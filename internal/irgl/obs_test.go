package irgl

import (
	"reflect"
	"testing"

	"gpuport/internal/obs"
)

// simTrace is a hand-built trace: two launches inside a loop, one
// outside any loop.
func simTrace() *Trace {
	return &Trace{
		App:   "bfs-wl",
		Input: "road",
		Launches: []KernelStats{
			{Name: "bfs_kernel", LoopID: 0, Items: 1, TotalWork: 3, AtomicPushes: 2},
			{Name: "bfs_kernel", LoopID: 0, Items: 2, TotalWork: 7, AtomicPushes: 1},
			{Name: "init", LoopID: -1, Items: 10, TotalWork: 0},
		},
		Loops: []LoopStats{{ID: 0, Name: "bfs_pipe", Iterations: 3, Launches: 2}},
	}
}

func TestTotalAtomicPushes(t *testing.T) {
	if got := simTrace().TotalAtomicPushes(); got != 3 {
		t.Errorf("TotalAtomicPushes = %d, want 3", got)
	}
}

func TestEmitSimTimeline(t *testing.T) {
	rec := obs.New().EnableSim()
	tr := simTrace()
	tr.EmitSim(rec, 4)
	s := rec.Snapshot()

	// Root + loop + 3 launches.
	if len(s.Spans) != 5 {
		t.Fatalf("spans = %d, want 5: %+v", len(s.Spans), s.Spans)
	}
	byName := map[string][]obs.Span{}
	var total int64
	for _, sp := range s.Spans {
		if sp.Track != obs.TrackSim {
			t.Errorf("span %q on real track", sp.Name)
		}
		if sp.Lane != 4 {
			t.Errorf("span %q lane = %d, want 4", sp.Name, sp.Lane)
		}
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for i := range tr.Launches {
		total += launchDur(&tr.Launches[i])
	}

	root := byName[obs.SpanSimTimeline][0]
	if root.DurNS != total || root.StartNS != 0 || root.Parent != 0 {
		t.Errorf("root = %+v, want start 0 dur %d parent 0", root, total)
	}
	loop := byName["bfs_pipe"][0]
	if loop.Parent != root.ID {
		t.Errorf("loop parent = %x, want root %x", loop.Parent, root.ID)
	}
	// Loop covers launches 0 and 1: starts at 0, ends before launch 2.
	wantLoopDur := launchDur(&tr.Launches[0]) + launchDur(&tr.Launches[1])
	if loop.StartNS != 0 || loop.DurNS != wantLoopDur {
		t.Errorf("loop interval = [%d, +%d], want [0, +%d]", loop.StartNS, loop.DurNS, wantLoopDur)
	}
	if got := len(byName["bfs_kernel"]); got != 2 {
		t.Fatalf("bfs_kernel spans = %d, want 2", got)
	}
	for _, sp := range byName["bfs_kernel"] {
		if sp.Parent != loop.ID {
			t.Errorf("launch parent = %x, want loop %x", sp.Parent, loop.ID)
		}
	}
	if init := byName["init"][0]; init.Parent != root.ID {
		t.Errorf("out-of-loop launch parent = %x, want root %x", init.Parent, root.ID)
	}
	if len(s.Lanes) != 1 || s.Lanes[0].Name != "bfs-wl on road" || s.Lanes[0].Lane != 4 {
		t.Errorf("lanes = %+v", s.Lanes)
	}
}

func TestEmitSimDeterministic(t *testing.T) {
	build := func() *obs.Snapshot {
		rec := obs.New().EnableSim()
		simTrace().EmitSim(rec, 0)
		return rec.Snapshot()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Spans, b.Spans) {
		t.Errorf("sim spans differ across identical emits:\n%+v\n%+v", a.Spans, b.Spans)
	}
}

func TestEmitSimDisabled(t *testing.T) {
	rec := obs.New() // sim not enabled
	simTrace().EmitSim(rec, 0)
	if s := rec.Snapshot(); len(s.Spans) != 0 || len(s.Lanes) != 0 {
		t.Errorf("disabled recorder captured %d spans", len(s.Spans))
	}
	var nilRec *obs.Recorder
	simTrace().EmitSim(nilRec, 0) // must not panic
}
