// Package irgl provides an IrGL-like operator intermediate representation
// and an instrumented runtime for graph applications.
//
// The paper's study compiles graph algorithms written in the IrGL DSL
// down to OpenCL kernels. Here the same algorithms are expressed against
// this package's operators (ForAll over worklist items or nodes, nested
// edge visits, atomic read-modify-writes, host-side fixpoint loops). The
// runtime executes them sequentially - so applications are functionally
// real and testable - while recording, per kernel launch, exactly the
// quantities that the paper's optimisations act on (Table VI):
//
//   - active items and total edge work (parallelism, launch utilisation),
//   - the per-item work distribution (load imbalance exploited by the
//     nested-parallelism optimisations wg / sg / fg),
//   - atomic worklist pushes (elided by cooperative conversion, coop-cv),
//   - irregular memory accesses (intra-workgroup memory divergence),
//   - host loop iterations (kernel-launch overhead removed by oitergb).
//
// The resulting Trace depends only on (application, input); the cost
// model in internal/cost combines a Trace with a chip model and an
// optimisation configuration to produce a simulated runtime.
package irgl

import (
	"fmt"
	"math"
	"math/bits"

	"gpuport/internal/graph"
)

// WorkHistBuckets is the number of log2 buckets in the per-item work
// histogram. Bucket b counts items whose work w satisfies
// 2^b <= w < 2^(b+1); zero-work items are counted separately.
const WorkHistBuckets = 24

// KernelStats records the instrumented execution of one kernel launch.
type KernelStats struct {
	// Name identifies the kernel within the application.
	Name string
	// LoopID is the ID of the enclosing host Iterate loop, or -1 when
	// the launch happens outside any loop. Only launches inside loops
	// are candidates for iteration outlining (oitergb).
	LoopID int
	// Items is the number of work-items launched (worklist length or
	// node count).
	Items int64
	// ZeroWorkItems counts items that performed no edge work.
	ZeroWorkItems int64
	// TotalWork is the total work units (typically edges) processed.
	TotalWork int64
	// MaxWork is the largest per-item work.
	MaxWork int64
	// WorkHist is the log2 histogram of nonzero per-item work.
	WorkHist [WorkHistBuckets]int64
	// WorkHistSum holds the total work per histogram bucket, so bucket
	// means are exact rather than approximated by bucket midpoints.
	WorkHistSum [WorkHistBuckets]int64
	// AtomicPushes counts worklist pushes (one global atomic RMW each,
	// unless cooperative conversion combines them).
	AtomicPushes int64
	// AtomicRMWs counts other global atomic read-modify-writes
	// (atomic min / add / CAS on application data).
	AtomicRMWs int64
	// RandomAccesses counts irregular (uncoalesced) global memory
	// accesses - the source of intra-workgroup memory divergence.
	RandomAccesses int64
	// LocalBarrierRounds counts algorithmic intra-workgroup barrier
	// phases the kernel itself requires (beyond those optimisations add).
	LocalBarrierRounds int64
}

// LoopStats records one host-side fixpoint loop (an Iterate call).
type LoopStats struct {
	// ID matches KernelStats.LoopID.
	ID int
	// Name labels the loop for reports.
	Name string
	// Iterations is the number of times the body executed.
	Iterations int64
	// Launches is the total number of kernel launches inside the loop.
	Launches int64
}

// Trace is the full instrumented execution record of one application on
// one input. It is the interface between the algorithm layer and the
// performance model.
type Trace struct {
	App      string
	Input    string
	Launches []KernelStats
	Loops    []LoopStats
}

// TotalLaunches returns the number of kernel launches recorded.
func (t *Trace) TotalLaunches() int { return len(t.Launches) }

// TotalEdgeWork sums work units across all launches.
func (t *Trace) TotalEdgeWork() int64 {
	var sum int64
	for i := range t.Launches {
		sum += t.Launches[i].TotalWork
	}
	return sum
}

// Runtime executes operators over a graph and accumulates a Trace.
// It is not safe for concurrent use; each application run owns one.
type Runtime struct {
	g        *graph.Graph
	trace    *Trace
	loopID   int // current loop, -1 outside
	nextLoop int
}

// NewRuntime returns a runtime over g, tracing under the given
// application name.
func NewRuntime(app string, g *graph.Graph) *Runtime {
	return &Runtime{
		g:      g,
		trace:  &Trace{App: app, Input: g.Name},
		loopID: -1,
	}
}

// Graph returns the input graph.
func (rt *Runtime) Graph() *graph.Graph { return rt.g }

// Trace returns the accumulated trace. Valid after the application has
// finished running.
func (rt *Runtime) Trace() *Trace { return rt.trace }

// Iterate runs body until it returns false, modelling the host-side
// fixpoint loop ("Pipe" in IrGL). Kernel launches inside the body are
// tagged with this loop's ID, making them candidates for iteration
// outlining. Nested Iterate calls are supported; launches are tagged
// with the innermost loop.
func (rt *Runtime) Iterate(name string, body func(iter int) bool) {
	id := rt.nextLoop
	rt.nextLoop++
	outer := rt.loopID
	rt.loopID = id
	loop := LoopStats{ID: id, Name: name}
	before := len(rt.trace.Launches)
	for iter := 0; ; iter++ {
		loop.Iterations++
		if !body(iter) {
			break
		}
		// Safety valve: a graph algorithm that exceeds this bound on
		// inputs of our size is buggy, not slow.
		if iter > 1<<22 {
			panic(fmt.Sprintf("irgl: loop %q exceeded iteration bound", name))
		}
	}
	loop.Launches = int64(len(rt.trace.Launches) - before)
	rt.trace.Loops = append(rt.trace.Loops, loop)
	rt.loopID = outer
}

// Kernel is an in-progress kernel launch. Obtain one from Launch, run
// one or more ForAll operators against it, then call End exactly once.
type Kernel struct {
	rt    *Runtime
	stats KernelStats
	ended bool
}

// Launch begins a kernel launch named name.
func (rt *Runtime) Launch(name string) *Kernel {
	return &Kernel{rt: rt, stats: KernelStats{Name: name, LoopID: rt.loopID}}
}

// End finalises the launch and appends its stats to the trace.
func (k *Kernel) End() {
	if k.ended {
		panic("irgl: Kernel.End called twice")
	}
	k.ended = true
	k.rt.trace.Launches = append(k.rt.trace.Launches, k.stats)
}

// Stats exposes the accumulated statistics (primarily for tests).
func (k *Kernel) Stats() KernelStats { return k.stats }

// BarrierRound records an algorithmic intra-workgroup barrier phase.
func (k *Kernel) BarrierRound() { k.stats.LocalBarrierRounds++ }

// Item is the per-work-item context handed to ForAll bodies. Its
// methods perform the actual operation and record its cost signature.
type Item struct {
	k    *Kernel
	work int64
}

// ForAllNodes launches one work-item per graph node.
func (k *Kernel) ForAllNodes(f func(it *Item, u int32)) {
	n := int32(k.rt.g.NumNodes())
	k.stats.Items += int64(n)
	it := Item{k: k}
	for u := int32(0); u < n; u++ {
		it.work = 0
		f(&it, u)
		k.recordItem(it.work)
	}
}

// ForAll launches one work-item per element of items (typically a
// drained worklist).
func (k *Kernel) ForAll(items []int32, f func(it *Item, v int32)) {
	if mutation("skip-last-frontier") && len(items) > 0 {
		items = items[:len(items)-1]
	}
	k.stats.Items += int64(len(items))
	it := Item{k: k}
	for _, v := range items {
		it.work = 0
		f(&it, v)
		k.recordItem(it.work)
	}
}

func (k *Kernel) recordItem(work int64) {
	if work == 0 {
		k.stats.ZeroWorkItems++
		return
	}
	k.stats.TotalWork += work
	if work > k.stats.MaxWork {
		k.stats.MaxWork = work
	}
	b := bits.Len64(uint64(work)) - 1
	if b >= WorkHistBuckets {
		b = WorkHistBuckets - 1
	}
	k.stats.WorkHist[b]++
	k.stats.WorkHistSum[b] += work
}

// VisitEdges iterates over the out-edges of u, counting one work unit
// and one irregular access per edge (graph applications touch per-
// destination state, which is uncoalesced by nature).
func (it *Item) VisitEdges(u int32, f func(v, w int32)) {
	g := it.k.rt.g
	nbrs := g.Neighbors(u)
	ws := g.EdgeWeights(u)
	it.work += int64(len(nbrs))
	it.k.stats.RandomAccesses += int64(len(nbrs))
	for i, v := range nbrs {
		f(v, ws[i])
	}
}

// Degree returns the out-degree of u without counting work.
func (it *Item) Degree(u int32) int { return it.k.rt.g.Degree(u) }

// Work adds n generic work units to the item (used by kernels whose
// inner work is not a plain edge visit, e.g. pointer jumping).
func (it *Item) Work(n int64) { it.work += n }

// RandomAccess records n additional irregular global memory accesses.
func (it *Item) RandomAccess(n int64) { it.k.stats.RandomAccesses += n }

// AtomicMin atomically lowers arr[i] to v; reports whether it improved
// the value. Counts one global atomic RMW and one irregular access.
func (it *Item) AtomicMin(arr []int32, i int32, v int32) bool {
	it.k.stats.AtomicRMWs++
	it.k.stats.RandomAccesses++
	if v < arr[i] {
		arr[i] = v
		return true
	}
	return false
}

// AtomicMax atomically raises arr[i] to v; reports whether it improved.
func (it *Item) AtomicMax(arr []int32, i int32, v int32) bool {
	it.k.stats.AtomicRMWs++
	it.k.stats.RandomAccesses++
	if v > arr[i] {
		arr[i] = v
		return true
	}
	return false
}

// AtomicAdd atomically adds delta to arr[i], returning the old value.
func (it *Item) AtomicAdd(arr []int32, i int32, delta int32) int32 {
	it.k.stats.AtomicRMWs++
	it.k.stats.RandomAccesses++
	old := arr[i]
	arr[i] += delta
	return old
}

// AtomicAddF atomically adds delta to arr[i] (float variant, used by
// PageRank residual propagation), returning the old value.
func (it *Item) AtomicAddF(arr []float64, i int32, delta float64) float64 {
	it.k.stats.AtomicRMWs++
	it.k.stats.RandomAccesses++
	old := arr[i]
	arr[i] += delta
	return old
}

// AtomicMin64 atomically lowers arr[i] to v; reports whether it
// improved the value. Used for packed (weight, edge) reductions such as
// Boruvka's minimum outgoing edge search.
func (it *Item) AtomicMin64(arr []int64, i int32, v int64) bool {
	it.k.stats.AtomicRMWs++
	it.k.stats.RandomAccesses++
	if v < arr[i] {
		arr[i] = v
		return true
	}
	return false
}

// AtomicCAS performs a compare-and-swap on arr[i].
func (it *Item) AtomicCAS(arr []int32, i int32, old, new int32) bool {
	it.k.stats.AtomicRMWs++
	it.k.stats.RandomAccesses++
	if arr[i] == old {
		arr[i] = new
		return true
	}
	return false
}

// Push appends v to the worklist's next buffer, counting one global
// atomic RMW (the worklist tail bump that coop-cv aggregates).
func (it *Item) Push(wl *Worklist, v int32) {
	it.k.stats.AtomicPushes++
	wl.next = append(wl.next, v)
}

// Worklist is a double-buffered dynamic worklist: kernels push into the
// next buffer while draining the current one, and the host swaps the
// buffers between launches.
type Worklist struct {
	cur, next []int32
}

// NewWorklist returns an empty worklist with capacity hints for a graph
// of n nodes.
func NewWorklist(n int) *Worklist {
	return &Worklist{
		cur:  make([]int32, 0, n),
		next: make([]int32, 0, n),
	}
}

// SeedHost pushes v from the host (no device atomic is charged).
func (wl *Worklist) SeedHost(v int32) { wl.cur = append(wl.cur, v) }

// Items returns the current buffer for a ForAll.
func (wl *Worklist) Items() []int32 { return wl.cur }

// Swap makes the next buffer current and clears the old one. Returns
// the new current length.
func (wl *Worklist) Swap() int {
	wl.cur, wl.next = wl.next, wl.cur[:0]
	return len(wl.cur)
}

// Len returns the current buffer length.
func (wl *Worklist) Len() int { return len(wl.cur) }

// PendingLen returns the next buffer length (pushes so far this round).
func (wl *Worklist) PendingLen() int { return len(wl.next) }

// ImbalanceFactor estimates, from the work histogram, the SIMD load
// imbalance at vector width k: the expected ratio between the cost of
// executing k items in lockstep (k * E[max of k draws]) and their useful
// work (k * E[work]). A factor of 1 means perfectly balanced; social
// networks at k=32 typically produce factors of 3-10. The cost model
// uses this to size the benefit of the nested-parallelism optimisations
// for a chip-specific subgroup / workgroup width.
func (s *KernelStats) ImbalanceFactor(k int) float64 {
	n := s.TotalWork
	items := s.Items - s.ZeroWorkItems
	if items <= 0 || n <= 0 || k <= 1 {
		return 1
	}
	mean := float64(n) / float64(items)

	// E[max of k iid draws] = sum_b rep(b) * (F(b)^k - F(b-1)^k), where
	// rep(b) is the exact mean work within bucket b.
	var cum float64
	total := float64(items)
	prevPow := 0.0
	emax := 0.0
	for b := 0; b < WorkHistBuckets; b++ {
		c := s.WorkHist[b]
		if c == 0 {
			continue
		}
		cum += float64(c)
		pow := math.Pow(cum/total, float64(k))
		rep := float64(s.WorkHistSum[b]) / float64(c)
		emax += rep * (pow - prevPow)
		prevPow = pow
	}
	if emax < mean {
		return 1
	}
	return emax / mean
}
