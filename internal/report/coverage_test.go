package report

import (
	"bytes"
	"strings"
	"testing"

	"gpuport/internal/dataset"
	"gpuport/internal/fault"
	"gpuport/internal/measure"
	"gpuport/internal/opt"
)

func partialReport() *measure.Report {
	p := &fault.Profile{Seed: 1, Transient: 0.05, Dropout: 1}
	p.Fill()
	return &measure.Report{
		Cells: 100, Measured: 90, Resumed: 10, Retried: 4,
		Attempts: 110, Quarantined: 3, WaitNS: 2.5e6,
		Failures: []measure.CellFailure{
			{Reason: fault.Transient, Attempts: 5},
			{Reason: fault.Dropout},
		},
		FailuresByKind: map[fault.Kind]int{fault.Transient: 2, fault.Dropout: 8},
		Profile:        p,
		DropoutChip:    "GTX1080",
		DropoutFrom:    42,
	}
}

func TestCoverageRendering(t *testing.T) {
	var buf bytes.Buffer
	Coverage(&buf, partialReport())
	out := buf.String()
	for _, want := range []string{
		"90/100 cells measured (90.0%)",
		"10 resumed from checkpoint",
		"transient", "chip-dropout",
		"GTX1080 dropped out at cell 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("coverage output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	Coverage(&buf, nil)
	if buf.Len() != 0 {
		t.Errorf("nil report rendered %q", buf.String())
	}

	buf.Reset()
	Coverage(&buf, &measure.Report{Cells: 5, Measured: 5})
	out = buf.String()
	if !strings.Contains(out, "5/5 cells") || strings.Contains(out, "Missing") {
		t.Errorf("complete report output wrong:\n%s", out)
	}
}

func TestFaultSummaryRendering(t *testing.T) {
	var buf bytes.Buffer
	FaultSummary(&buf, partialReport())
	out := buf.String()
	for _, want := range []string{
		"fault profile:", "launch attempts", "cells healed by retry",
		"samples quarantined", "cells lost", "2.50 ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fault summary missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	FaultSummary(&buf, &measure.Report{Cells: 5, Measured: 5})
	if buf.Len() != 0 {
		t.Errorf("fault-free report rendered %q", buf.String())
	}
}

func TestPartialTuplesAndSummaryCoverage(t *testing.T) {
	d := dataset.New()
	t1 := dataset.Tuple{Chip: "c1", App: "a1", Input: "i1"}
	t2 := dataset.Tuple{Chip: "c2", App: "a1", Input: "i1"}
	for i, cfg := range opt.All() {
		d.Add(dataset.Record{Key: dataset.Key{Tuple: t1, Config: cfg}, Samples: []float64{float64(i + 1)}})
		if i%2 == 0 {
			d.Add(dataset.Record{Key: dataset.Key{Tuple: t2, Config: cfg}, Samples: []float64{float64(i + 1)}})
		}
	}

	var buf bytes.Buffer
	PartialTuples(&buf, d)
	out := buf.String()
	if !strings.Contains(out, t2.String()) {
		t.Errorf("partial tuple %s not listed:\n%s", t2, out)
	}
	if strings.Contains(out, t1.String()) {
		t.Errorf("complete tuple %s wrongly listed:\n%s", t1, out)
	}

	buf.Reset()
	TuplesSummary(&buf, d)
	if !strings.Contains(buf.String(), "partial:") {
		t.Errorf("summary hides partial coverage: %q", buf.String())
	}

	// A complete dataset stays on the terse one-liner.
	full := dataset.New()
	for i, cfg := range opt.All() {
		full.Add(dataset.Record{Key: dataset.Key{Tuple: t1, Config: cfg}, Samples: []float64{float64(i + 1)}})
	}
	buf.Reset()
	TuplesSummary(&buf, full)
	if strings.Contains(buf.String(), "partial") {
		t.Errorf("complete dataset reported partial: %q", buf.String())
	}
	buf.Reset()
	PartialTuples(&buf, full)
	if buf.Len() != 0 {
		t.Errorf("complete dataset rendered partial tuples: %q", buf.String())
	}
}
