package report

import (
	"io"

	"gpuport/internal/measure"
	"gpuport/internal/obs"
)

// TraceCacheSummary renders the trace-cache traffic of a collection run
// as a table. Runs without cache activity render nothing, so callers
// can invoke it unconditionally. Only counters appear here - they are
// deterministic for a given cache state - while wall-clock stage
// timings go to the verbose log (obs.Summary.Format).
func TraceCacheSummary(w io.Writer, rep *measure.Report) error {
	if rep == nil || rep.Pipeline == nil {
		return nil
	}
	hits, misses := rep.TraceCacheHits(), rep.TraceCacheMisses()
	putErrs := rep.Pipeline.Counter(obs.CtrCachePutErrors)
	mismatches := rep.Pipeline.Counter(obs.CtrCacheMismatches)
	evicted, healed := rep.TraceCacheEvictions(), rep.TraceCacheHealed()
	if hits+misses+putErrs+mismatches+evicted+healed == 0 {
		return nil
	}
	t := NewTable("Trace cache", "Metric", "Value").RightAlign(1)
	t.Row("hits (execution skipped)", hits)
	t.Row("misses (traced fresh)", misses)
	if total := hits + misses; total > 0 {
		t.Row("hit rate", F(float64(hits)/float64(total)*100, 1)+"%")
	}
	if mismatches > 0 {
		t.Row("identity mismatches (re-traced)", mismatches)
	}
	if putErrs > 0 {
		t.Row("write errors (not cached)", putErrs)
	}
	if evicted > 0 {
		t.Row("evictions (size cap)", evicted)
	}
	if healed > 0 {
		t.Row("damaged entries healed", healed)
	}
	return t.Render(w)
}
