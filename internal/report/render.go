package report

import (
	"fmt"
	"io"

	"gpuport/internal/analysis"
	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/dataset"
	"gpuport/internal/graph"
	"gpuport/internal/opt"
)

// Chips renders Table I: the GPUs of the study.
func Chips(w io.Writer, chips []chip.Chip) error {
	t := NewTable("Table I: GPUs of the study", "Vendor", "Chip", "Arch", "OS", "#CUs", "SG size", "Short name").
		RightAlign(4, 5)
	for _, c := range chips {
		t.Row(c.Vendor, c.Name, c.Arch, c.OS, c.CUs, c.SubgroupSize, c.Name)
	}
	return t.Render(w)
}

// Extremes renders Table II: top speedups and slowdowns per chip.
func Extremes(w io.Writer, ex []analysis.Extreme) error {
	t := NewTable("Table II: extreme optimisation effects per chip",
		"Chip", "Max speedup", "App", "Input", "Max slowdown", "App", "Input").
		RightAlign(1, 4)
	for _, e := range ex {
		t.Row(e.Chip,
			F(e.MaxSpeedup, 2)+"x", e.SpeedupApp, e.SpeedupInput,
			F(e.MaxSlowdown, 2)+"x", e.SlowdownApp, e.SlowdownInput)
	}
	return t.Render(w)
}

// ConfigRanks renders Table III: the global configuration ranking. It
// shows the top, two middle rows (including the max-geomean pick), and
// the bottom, like the paper.
func ConfigRanks(w io.Writer, ranks []analysis.ConfigRank, chosen analysis.ConfigRank, tests int) error {
	t := NewTable(
		fmt.Sprintf("Table III: optimisation combinations ranked by slowdowns (out of %d tests)", tests),
		"Rank", "Enabled opts", "Slowdowns", "Speedups", "Geomean").
		RightAlign(0, 2, 3, 4)
	maxGeo := analysis.MaxGeoMeanConfig(ranks)
	show := map[int]bool{}
	for i := 0; i < 5 && i < len(ranks); i++ {
		show[i] = true
	}
	for i := len(ranks) - 5; i < len(ranks); i++ {
		if i >= 0 {
			show[i] = true
		}
	}
	show[maxGeo.Rank] = true
	show[chosen.Rank] = true
	prev := -1
	for i, r := range ranks {
		if !show[i] {
			continue
		}
		if prev >= 0 && i != prev+1 {
			t.Separator()
		}
		prev = i
		mark := ""
		if i == maxGeo.Rank {
			mark = "  <- max geomean"
		}
		if i == chosen.Rank {
			mark = "  <- our analysis (global strategy)"
		}
		t.Row(r.Rank, r.Config.String()+mark, r.Slowdowns, r.Speedups, F(r.GeoMean, 2))
	}
	return t.Render(w)
}

// ChipCounts renders Table IV: per-chip outcome counts for the two
// contrasted configurations.
func ChipCounts(w io.Writer, maxGeo opt.Config, a []analysis.ChipCounts, ours opt.Config, b []analysis.ChipCounts) error {
	t := NewTable("Table IV: per-chip bias of policy choices",
		"Chip",
		"speedups", "slowdowns", "max",
		"| speedups", "slowdowns", "max").
		RightAlign(1, 2, 3, 4, 5, 6)
	if _, err := fmt.Fprintf(w, "left: max-geomean pick [%s]   right: rank-based pick [%s]\n", maxGeo, ours); err != nil {
		return err
	}
	for i := range a {
		t.Row(a[i].Chip,
			a[i].Speedups, a[i].Slowdowns, F(a[i].MaxSpeedup, 2)+"x",
			fmt.Sprintf("| %d", b[i].Speedups), b[i].Slowdowns, F(b[i].MaxSpeedup, 2)+"x")
	}
	return t.Render(w)
}

// Strategies renders Table V: the strategy functions by specialisation.
func Strategies(w io.Writer) error {
	t := NewTable("Table V: optimisation strategies (Table V)", "Strategy", "Specialises on", "Definition")
	t.Row("baseline", "-", "all optimisations disabled")
	t.Row("global", "-", "flags passing the MWU test over the whole dataset")
	for _, d := range analysis.AllDims() {
		if d.Count() == 0 {
			continue
		}
		t.Row(d.Name(), d.Name(), "flags passing the MWU test per "+d.Name()+" partition")
	}
	t.Row("oracle", "chip, app, input", "empirically best configuration per test")
	return t.Render(w)
}

// OptSummary renders Table VI: optimisations and the performance
// parameters that govern them.
func OptSummary(w io.Writer) error {
	t := NewTable("Table VI: optimisations and their performance parameters", "Optimisation", "Performance parameters")
	t.Row("coop-cv", "workgroup/subgroup size, atomic RMW throughput, subgroup collectives")
	t.Row("fg (1|8)", "local memory, workgroup barriers, scheduling overhead, coalescing")
	t.Row("sg", "subgroup size, subgroup-barrier throughput, local memory")
	t.Row("wg", "workgroup size, local memory, workgroup-barrier throughput")
	t.Row("oitergb", "kernel launch + copy overhead, global synchronisation, occupancy")
	t.Row("sz256", "occupancy, workgroup-local resource limits")
	return t.Render(w)
}

// Apps renders Table VII: the applications.
func Apps(w io.Writer, as []apps.App) error {
	t := NewTable("Table VII: graph applications", "Problem", "Application", "Variant", "Fastest")
	for _, a := range as {
		mark := ""
		if a.Fastest {
			mark = "(*)"
		}
		t.Row(a.Problem, a.Name, a.Variant, mark)
	}
	return t.Render(w)
}

// Inputs renders Table VIII: the inputs with their structural
// properties.
func Inputs(w io.Writer, props []graph.Properties) error {
	t := NewTable("Table VIII: graph inputs",
		"Input", "Class", "Nodes", "Edges", "Mean deg", "Max deg", "Deg CV", "~Diameter").
		RightAlign(2, 3, 4, 5, 6, 7)
	for _, p := range props {
		t.Row(p.Name, p.Class, p.Nodes, p.Edges, F(p.MeanDegree, 1), p.MaxDegree, F(p.DegreeCV, 2), p.ApproxDiam)
	}
	return t.Render(w)
}

// ChipRecommendations renders Table IX: the per-chip flag decisions
// with common-language effect sizes.
func ChipRecommendations(w io.Writer, spec *analysis.Specialisation) error {
	flags := opt.Flags()
	header := []string{"Chip"}
	for _, f := range flags {
		header = append(header, f.String())
	}
	t := NewTable("Table IX: chip-specialised recommendations (mark / CL effect size)", header...)
	for _, p := range spec.Partitions {
		row := []any{p.Key.Chip}
		for _, dec := range p.Decisions {
			mark := "x"
			if dec.Enabled {
				mark = "Y"
			}
			if !dec.Confident {
				mark = "?"
			}
			row = append(row, fmt.Sprintf("%s .%02.0f", mark, dec.CL*100))
		}
		t.Row(row...)
	}
	if _, err := fmt.Fprintln(w, "Y = enable, x = do not enable, ? = not enough significant samples (p >= .05)"); err != nil {
		return err
	}
	return t.Render(w)
}

// Heatmap renders Figure 1: cross-chip portability of chip-optimal
// configurations.
func Heatmap(w io.Writer, h *analysis.Heatmap) error {
	header := []string{"run on \\ opts for"}
	header = append(header, h.Cols...)
	header = append(header, "| row geomean")
	t := NewTable("Figure 1: geomean slowdown from porting chip-optimal settings", header...).
		RightAlign(1, 2, 3, 4, 5, 6, 7)
	for i, r := range h.Rows {
		row := []any{r}
		for j := range h.Cols {
			row = append(row, F(h.Cell[i][j], 2))
		}
		row = append(row, "| "+F(h.RowMean[i], 2))
		t.Row(row...)
	}
	t.Separator()
	colRow := []any{"col geomean"}
	for j := range h.Cols {
		colRow = append(colRow, F(h.ColMean[j], 2))
	}
	colRow = append(colRow, "|")
	t.Row(colRow...)
	off := []any{"off-diagonal"}
	for j := range h.Cols {
		off = append(off, F(h.ColMeanOffDiag[j], 2))
	}
	off = append(off, "|")
	t.Row(off...)
	return t.Render(w)
}

// FlagFrequencies renders Figure 2: optimisations required for top
// speedups, per chip.
func FlagFrequencies(w io.Writer, ffs []analysis.FlagFrequency) error {
	flags := opt.Flags()
	header := []string{"Chip", "tests"}
	for _, f := range flags {
		header = append(header, f.String())
	}
	t := NewTable("Figure 2: optimisations in per-test optimal configs (count per chip)", header...).
		RightAlign(1, 2, 3, 4, 5, 6, 7, 8)
	for _, ff := range ffs {
		row := []any{ff.Chip, ff.Tests}
		for _, f := range flags {
			row = append(row, ff.Count[f])
		}
		t.Row(row...)
	}
	return t.Render(w)
}

// StrategyOutcomes renders Figure 3: percentage of tests with
// speedups / no change / slowdowns per strategy.
func StrategyOutcomes(w io.Writer, evals []analysis.StrategyEval, excluded int) error {
	t := NewTable(
		fmt.Sprintf("Figure 3: outcomes per strategy (%d non-improvable tests excluded)", excluded),
		"Strategy", "Speedups", "NoChange", "Slowdowns", "%speedup", "bar").
		RightAlign(1, 2, 3, 4)
	for _, e := range evals {
		total := e.Tests()
		frac := 0.0
		if total > 0 {
			frac = float64(e.Speedups) / float64(total)
		}
		t.Row(e.Name, e.Speedups, e.NoChanges, e.Slowdowns, F(frac*100, 0)+"%", Bar(frac, 30))
	}
	return t.Render(w)
}

// StrategySlowdowns renders Figure 4: geomean slowdown versus the
// oracle per strategy.
func StrategySlowdowns(w io.Writer, evals []analysis.StrategyEval) error {
	t := NewTable("Figure 4: geomean slowdown vs oracle per strategy",
		"Strategy", "vs oracle", "vs baseline", "max speedup").
		RightAlign(1, 2, 3)
	for _, e := range evals {
		t.Row(e.Name, F(e.GeoMeanSlowdownVsOracle, 2)+"x", F(e.GeoMeanVsBaseline, 2)+"x", F(e.MaxSpeedup, 2)+"x")
	}
	return t.Render(w)
}

// TuplesSummary prints a one-line dataset summary. A dataset with holes
// in its own grid additionally states its coverage, so no analysis is
// ever presented as if it were complete.
func TuplesSummary(w io.Writer, d *dataset.Dataset) error {
	p := &printer{w: w}
	p.f("dataset: %d chips x %d apps x %d inputs = %d tuples, %d records",
		len(d.Chips()), len(d.Apps()), len(d.Inputs()), len(d.Tuples()), d.Len())
	if cov := d.Coverage(); cov < 1 {
		p.f(" (partial: %.1f%% of the grid covered)", cov*100)
	}
	p.ln()
	return p.err
}
