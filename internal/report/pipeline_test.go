package report

import (
	"strings"
	"testing"

	"gpuport/internal/measure"
	"gpuport/internal/obs"
)

func TestTraceCacheSummary(t *testing.T) {
	var b strings.Builder
	TraceCacheSummary(&b, nil)
	TraceCacheSummary(&b, &measure.Report{})
	TraceCacheSummary(&b, &measure.Report{Pipeline: &obs.Summary{}})
	if b.Len() != 0 {
		t.Fatalf("inactive cache rendered output:\n%s", b.String())
	}

	rep := &measure.Report{Pipeline: &obs.Summary{Counters: []obs.Counter{
		{Name: "trace-cache-hits", Value: 48},
		{Name: "trace-cache-misses", Value: 3},
		{Name: "trace-cache-put-errors", Value: 1},
	}}}
	TraceCacheSummary(&b, rep)
	out := b.String()
	for _, want := range []string{"Trace cache", "48", "3", "94.1%", "write errors"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "identity mismatches") {
		t.Error("mismatch row rendered without mismatches")
	}
}
