package report

import (
	"strings"
	"testing"

	"gpuport/internal/measure"
	"gpuport/internal/obs"
)

func TestTraceCacheSummary(t *testing.T) {
	var b strings.Builder
	TraceCacheSummary(&b, nil)
	TraceCacheSummary(&b, &measure.Report{})
	TraceCacheSummary(&b, &measure.Report{Pipeline: &obs.Summary{}})
	if b.Len() != 0 {
		t.Fatalf("inactive cache rendered output:\n%s", b.String())
	}

	rep := &measure.Report{Pipeline: &obs.Summary{Counters: []obs.Counter{
		{Name: obs.CtrCacheHits, Value: 48},
		{Name: obs.CtrCacheMisses, Value: 3},
		{Name: obs.CtrCachePutErrors, Value: 1},
	}}}
	TraceCacheSummary(&b, rep)
	out := b.String()
	for _, want := range []string{"Trace cache", "48", "3", "94.1%", "write errors"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, skip := range []string{"identity mismatches", "evictions", "healed"} {
		if strings.Contains(out, skip) {
			t.Errorf("%s row rendered without any", skip)
		}
	}

	// Store-level rows render when the store reported traffic.
	b.Reset()
	rep = &measure.Report{Pipeline: &obs.Summary{Counters: []obs.Counter{
		{Name: obs.CtrCacheHits, Value: 10},
		{Name: obs.CtrCacheMisses, Value: 2},
		{Name: obs.CtrCacheEvictions, Value: 4},
		{Name: obs.CtrCacheCorrupt, Value: 1},
	}}}
	TraceCacheSummary(&b, rep)
	out = b.String()
	for _, want := range []string{"evictions (size cap)", "damaged entries healed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
