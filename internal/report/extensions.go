package report

import (
	"fmt"
	"io"

	"gpuport/internal/analysis"
)

// SamplingCurve renders the Section IX subsampling experiment: how much
// of the full-data recommendation survives at each sampling rate.
func SamplingCurve(w io.Writer, dims analysis.Dims, pts []analysis.SamplingPoint) error {
	t := NewTable(
		fmt.Sprintf("Sampling sufficiency for the %s specialisation", dims.Name()),
		"Sample", "Trials", "Mean agree", "Min agree", "Undecided", "bar").
		RightAlign(0, 1, 2, 3, 4)
	for _, p := range pts {
		t.Row(
			F(p.Fraction*100, 0)+"%",
			p.Trials,
			F(p.MeanAgreement*100, 1)+"%",
			F(p.MinAgreement*100, 1)+"%",
			F(p.MeanUndecided*100, 1)+"%",
			Bar(p.MeanAgreement, 30),
		)
	}
	return t.Render(w)
}

// CrossValidation renders the leave-one-out prediction experiment.
func CrossValidation(w io.Writer, dim string, results []analysis.LOOResult) error {
	t := NewTable(
		fmt.Sprintf("Leave-one-%s-out prediction (strategy never saw the held-out %s)", dim, dim),
		"Held out", "Tests", "Speedups", "Slowdowns", "vs oracle", "vs baseline").
		RightAlign(1, 2, 3, 4, 5)
	for _, r := range results {
		t.Row(r.Held, r.TestCount, r.Eval.Speedups, r.Eval.Slowdowns,
			F(r.Eval.GeoMeanSlowdownVsOracle, 2)+"x",
			F(r.Eval.GeoMeanVsBaseline, 2)+"x")
	}
	return t.Render(w)
}
