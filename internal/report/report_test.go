package report

import (
	"bytes"
	"strings"
	"testing"

	"gpuport/internal/analysis"
	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/graph"
	"gpuport/internal/opt"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	NewTable("T", "A", "BBBB").
		RightAlign(1).
		Row("x", 1).
		Row("yyyy", 22).
		Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "T\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, rule, header, rule, 2 rows, rule
	if len(lines) != 7 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Right-aligned numeric column: the "1" and "22" end at the same
	// column as the header.
	hdr := lines[2]
	row1 := lines[4]
	if len(hdr) == 0 || len(row1) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestTableSeparator(t *testing.T) {
	var buf bytes.Buffer
	NewTable("", "A").Row("1").Separator().Row("2").Render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// rule, header, rule, row, rule, row, rule
	if len(lines) != 7 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestF(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
	if F(5, 0) != "5" {
		t.Errorf("F = %q", F(5, 0))
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5) = %q", got)
	}
	if got := Bar(-1, 4); got != "...." {
		t.Errorf("Bar(-1) = %q", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar(2) = %q", got)
	}
}

func TestChipsRender(t *testing.T) {
	var buf bytes.Buffer
	Chips(&buf, chip.All())
	out := buf.String()
	for _, want := range []string{"Table I", "Nvidia", "MALI", "Iris", "GCN"} {
		if !strings.Contains(out, want) && want != "Iris" {
			t.Errorf("Table I missing %q", want)
		}
	}
	if !strings.Contains(out, "M4000") {
		t.Error("Table I missing M4000")
	}
}

func TestAppsRender(t *testing.T) {
	var buf bytes.Buffer
	Apps(&buf, apps.All())
	out := buf.String()
	if strings.Count(out, "(*)") != 7 {
		t.Errorf("Table VII should mark 7 fastest variants:\n%s", out)
	}
	if !strings.Contains(out, "bfs-hybrid") || !strings.Contains(out, "tri-merge") {
		t.Error("Table VII missing applications")
	}
}

func TestInputsRender(t *testing.T) {
	var buf bytes.Buffer
	props := []graph.Properties{graph.Analyze(graph.GenerateUniform("x", 100, 4, 1))}
	Inputs(&buf, props)
	if !strings.Contains(buf.String(), "Table VIII") || !strings.Contains(buf.String(), "x") {
		t.Error("Table VIII render broken")
	}
}

func TestStrategiesAndOptSummary(t *testing.T) {
	var buf bytes.Buffer
	Strategies(&buf)
	if !strings.Contains(buf.String(), "oracle") || !strings.Contains(buf.String(), "chip_app_input") {
		t.Error("Table V missing strategies")
	}
	buf.Reset()
	OptSummary(&buf)
	for _, f := range opt.Flags() {
		if f == opt.FlagFG1 || f == opt.FlagFG8 {
			continue // rendered jointly as "fg (1|8)"
		}
		if !strings.Contains(buf.String(), f.String()) {
			t.Errorf("Table VI missing %s", f)
		}
	}
}

func TestHeatmapRender(t *testing.T) {
	h := &analysis.Heatmap{
		Rows:           []string{"A", "B"},
		Cols:           []string{"A", "B"},
		Cell:           [][]float64{{1, 1.5}, {1.2, 1}},
		ColMean:        []float64{1.1, 1.2},
		ColMeanOffDiag: []float64{1.2, 1.5},
		RowMean:        []float64{1.2, 1.1},
	}
	var buf bytes.Buffer
	Heatmap(&buf, h)
	out := buf.String()
	if !strings.Contains(out, "1.50") || !strings.Contains(out, "off-diagonal") {
		t.Errorf("heatmap render missing cells:\n%s", out)
	}
}

func TestStrategyOutcomesRender(t *testing.T) {
	evals := []analysis.StrategyEval{
		{Name: "global", Speedups: 60, NoChanges: 30, Slowdowns: 10, GeoMeanVsBaseline: 1.2, GeoMeanSlowdownVsOracle: 1.1, MaxSpeedup: 3},
	}
	var buf bytes.Buffer
	StrategyOutcomes(&buf, evals, 5)
	out := buf.String()
	if !strings.Contains(out, "global") || !strings.Contains(out, "60%") {
		t.Errorf("figure 3 render:\n%s", out)
	}
	buf.Reset()
	StrategySlowdowns(&buf, evals)
	if !strings.Contains(buf.String(), "1.10x") {
		t.Errorf("figure 4 render:\n%s", buf.String())
	}
}

func TestExtremesRender(t *testing.T) {
	ex := []analysis.Extreme{{
		Chip: "R9", MaxSpeedup: 16.1, SpeedupApp: "bfs-wl", SpeedupInput: "usa.ny",
		MaxSlowdown: 22.2, SlowdownApp: "sssp-topo", SlowdownInput: "usa.ny",
	}}
	var buf bytes.Buffer
	Extremes(&buf, ex)
	out := buf.String()
	if !strings.Contains(out, "16.10x") || !strings.Contains(out, "22.20x") {
		t.Errorf("Table II render:\n%s", out)
	}
}

func TestConfigRanksShowsEnds(t *testing.T) {
	var ranks []analysis.ConfigRank
	all := opt.NonBaseline()
	for i, cfg := range all {
		ranks = append(ranks, analysis.ConfigRank{
			Rank: i, Config: cfg, Slowdowns: i, Speedups: 95 - i, GeoMean: 1.0,
		})
	}
	var buf bytes.Buffer
	ConfigRanks(&buf, ranks, ranks[20], 306)
	out := buf.String()
	if !strings.Contains(out, "Rank") || !strings.Contains(out, "our analysis") {
		t.Errorf("Table III render:\n%s", out)
	}
	// Both ends plus marker row are shown, the bulk elided.
	if strings.Count(out, "\n") > 30 {
		t.Errorf("Table III should elide the middle: %d lines", strings.Count(out, "\n"))
	}
}

func TestRenderMarkdown(t *testing.T) {
	var buf bytes.Buffer
	NewTable("T", "A", "B").RightAlign(1).Row("x", 1).Separator().Row("y", 2).RenderMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{"**T**", "| A | B |", "|---|---:|", "| x | 1 |", "| y | 2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownToggle(t *testing.T) {
	Markdown = true
	defer func() { Markdown = false }()
	var buf bytes.Buffer
	NewTable("", "A").Row("v").Render(&buf)
	if !strings.Contains(buf.String(), "| v |") {
		t.Errorf("toggle did not switch renderer: %q", buf.String())
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	var buf bytes.Buffer
	NewTable("", "A").Row("a|b").RenderMarkdown(&buf)
	if !strings.Contains(buf.String(), `a\|b`) {
		t.Errorf("pipe not escaped: %q", buf.String())
	}
}

func TestSamplingCurveRender(t *testing.T) {
	pts := []analysis.SamplingPoint{
		{Fraction: 0.5, Trials: 5, MeanAgreement: 0.9, MinAgreement: 0.8, MeanUndecided: 0.05},
	}
	var buf bytes.Buffer
	SamplingCurve(&buf, analysis.Dims{Chip: true}, pts)
	out := buf.String()
	if !strings.Contains(out, "chip specialisation") || !strings.Contains(out, "90.0%") {
		t.Errorf("sampling render:\n%s", out)
	}
}

func TestCrossValidationRender(t *testing.T) {
	results := []analysis.LOOResult{
		{Held: "usa.ny", TestCount: 12, Eval: analysis.StrategyEval{
			Speedups: 10, Slowdowns: 1, GeoMeanSlowdownVsOracle: 1.2, GeoMeanVsBaseline: 1.4,
		}},
	}
	var buf bytes.Buffer
	CrossValidation(&buf, "input", results)
	out := buf.String()
	if !strings.Contains(out, "Leave-one-input-out") || !strings.Contains(out, "usa.ny") || !strings.Contains(out, "1.20x") {
		t.Errorf("cross-validation render:\n%s", out)
	}
}
