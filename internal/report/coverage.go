package report

import (
	"fmt"
	"io"

	"gpuport/internal/dataset"
	"gpuport/internal/fault"
	"gpuport/internal/measure"
)

// Coverage renders the collection report's accounting: how much of the
// intended sweep was measured and, for a partial dataset, exactly what
// is missing and why. Every analysis printed next to this block is to
// be read as "over the covered cells". A nil report renders nothing.
func Coverage(w io.Writer, rep *measure.Report) {
	if rep == nil {
		return
	}
	fmt.Fprintf(w, "coverage: %d/%d cells measured (%.1f%%)",
		rep.Measured, rep.Cells, rep.Coverage()*100)
	if rep.Resumed > 0 {
		fmt.Fprintf(w, ", %d resumed from checkpoint", rep.Resumed)
	}
	fmt.Fprintln(w)
	if rep.CheckpointError != "" {
		fmt.Fprintf(w, "warning: checkpointing failed (%s); this run is not resumable\n", rep.CheckpointError)
	}
	if rep.Complete() {
		return
	}
	t := NewTable("Missing cells by failure kind", "Failure", "Cells", "Share").
		RightAlign(1, 2)
	missing := rep.Cells - rep.Measured
	for _, k := range fault.SortKinds(rep.FailuresByKind) {
		n := rep.FailuresByKind[k]
		t.Row(k.String(), n, F(float64(n)/float64(missing)*100, 1)+"%")
	}
	t.Render(w)
	if rep.DropoutChip != "" {
		fmt.Fprintf(w, "chip %s dropped out at cell %d; all its later cells are missing\n",
			rep.DropoutChip, rep.DropoutFrom)
	}
}

// FaultSummary renders the fault-injection campaign: the profile the
// sweep ran under and what the self-healing machinery absorbed. A
// report without fault injection renders nothing.
func FaultSummary(w io.Writer, rep *measure.Report) {
	if rep == nil || rep.Profile == nil {
		return
	}
	p := rep.Profile
	fmt.Fprintf(w, "fault profile: %s\n", p.String())
	t := NewTable("Fault-injection campaign", "Event", "Count").RightAlign(1)
	t.Row("launch attempts", rep.Attempts)
	t.Row("cells healed by retry", rep.Retried)
	t.Row("samples quarantined", rep.Quarantined)
	t.Row("cells lost", len(rep.Failures))
	t.Render(w)
	if rep.WaitNS > 0 {
		fmt.Fprintf(w, "virtual time on backoffs and deadlines: %.2f ms\n", rep.WaitNS/1e6)
	}
}

// PartialTuples lists the tuples whose configuration grids have holes,
// with per-tuple coverage - the per-tuple view of a degraded dataset.
// Fully covered datasets render nothing.
func PartialTuples(w io.Writer, d *dataset.Dataset) {
	var t *Table
	for _, tp := range d.Tuples() {
		c := d.TupleCoverage(tp)
		if c >= 1 {
			continue
		}
		if t == nil {
			t = NewTable("Partially covered tuples", "Tuple", "Coverage", "bar").
				RightAlign(1)
		}
		t.Row(tp.String(), F(c*100, 1)+"%", Bar(c, 20))
	}
	if t != nil {
		t.Render(w)
	}
}
