package report

import (
	"io"

	"gpuport/internal/dataset"
	"gpuport/internal/fault"
	"gpuport/internal/measure"
)

// Coverage renders the collection report's accounting: how much of the
// intended sweep was measured and, for a partial dataset, exactly what
// is missing and why. Every analysis printed next to this block is to
// be read as "over the covered cells". A nil report renders nothing.
func Coverage(w io.Writer, rep *measure.Report) error {
	if rep == nil {
		return nil
	}
	p := &printer{w: w}
	p.f("coverage: %d/%d cells measured (%.1f%%)",
		rep.Measured, rep.Cells, rep.Coverage()*100)
	if rep.Resumed > 0 {
		p.f(", %d resumed from checkpoint", rep.Resumed)
	}
	p.ln()
	if rep.CheckpointError != "" {
		p.f("warning: checkpointing failed (%s); this run is not resumable\n", rep.CheckpointError)
	}
	if rep.Complete() {
		return p.err
	}
	t := NewTable("Missing cells by failure kind", "Failure", "Cells", "Share").
		RightAlign(1, 2)
	missing := rep.Cells - rep.Measured
	for _, k := range fault.SortKinds(rep.FailuresByKind) {
		n := rep.FailuresByKind[k]
		t.Row(k.String(), n, F(float64(n)/float64(missing)*100, 1)+"%")
	}
	p.table(t)
	if rep.DropoutChip != "" {
		p.f("chip %s dropped out at cell %d; all its later cells are missing\n",
			rep.DropoutChip, rep.DropoutFrom)
	}
	return p.err
}

// FaultSummary renders the fault-injection campaign: the profile the
// sweep ran under and what the self-healing machinery absorbed. A
// report without fault injection renders nothing.
func FaultSummary(w io.Writer, rep *measure.Report) error {
	if rep == nil || rep.Profile == nil {
		return nil
	}
	p := &printer{w: w}
	p.f("fault profile: %s\n", rep.Profile.String())
	t := NewTable("Fault-injection campaign", "Event", "Count").RightAlign(1)
	t.Row("launch attempts", rep.Attempts)
	t.Row("cells healed by retry", rep.Retried)
	t.Row("samples quarantined", rep.Quarantined)
	t.Row("cells lost", len(rep.Failures))
	p.table(t)
	if rep.WaitNS > 0 {
		p.f("virtual time on backoffs and deadlines: %.2f ms\n", rep.WaitNS/1e6)
	}
	return p.err
}

// PartialTuples lists the tuples whose configuration grids have holes,
// with per-tuple coverage - the per-tuple view of a degraded dataset.
// Fully covered datasets render nothing.
func PartialTuples(w io.Writer, d *dataset.Dataset) error {
	var t *Table
	for _, tp := range d.Tuples() {
		c := d.TupleCoverage(tp)
		if c >= 1 {
			continue
		}
		if t == nil {
			t = NewTable("Partially covered tuples", "Tuple", "Coverage", "bar").
				RightAlign(1)
		}
		t.Row(tp.String(), F(c*100, 1)+"%", Bar(c, 20))
	}
	if t != nil {
		return t.Render(w)
	}
	return nil
}
