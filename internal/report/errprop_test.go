package report

import (
	"bytes"
	"errors"
	"testing"

	"gpuport/internal/chip"
)

// failAfter is a writer that accepts the first n writes, then fails:
// it proves render errors surface no matter how deep in the table the
// broken pipe appears.
type failAfter struct {
	n int
}

var errPipe = errors.New("broken pipe")

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errPipe
	}
	w.n--
	return len(p), nil
}

// TestRenderPropagatesWriteError sweeps the failure point across every
// write a table makes, in both text and markdown form.
func TestRenderPropagatesWriteError(t *testing.T) {
	build := func() *Table {
		return NewTable("T", "A", "B").RightAlign(1).Row("x", 1).Separator().Row("y", 2)
	}
	var ok bytes.Buffer
	if err := build().Render(&ok); err != nil {
		t.Fatalf("healthy writer errored: %v", err)
	}
	writes := ok.Len() // upper bound on write calls: at most one per byte

	for _, mode := range []struct {
		name   string
		render func(*Table, *failAfter) error
	}{
		{"text", func(tb *Table, w *failAfter) error { return tb.Render(w) }},
		{"markdown", func(tb *Table, w *failAfter) error { return tb.RenderMarkdown(w) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for n := 0; n < writes; n++ {
				if err := mode.render(build(), &failAfter{n: n}); !errors.Is(err, errPipe) {
					// Past the real number of write calls the render
					// succeeds; that is the loop's natural end.
					if err == nil {
						return
					}
					t.Fatalf("fail at write %d: got %v, want errPipe", n, err)
				}
			}
		})
	}
}

// TestRenderersPropagateWriteError covers the free-function renderers
// that wrap tables with surrounding prose.
func TestRenderersPropagateWriteError(t *testing.T) {
	chips := []chip.Chip{{Name: "sim-a"}}
	cases := map[string]func(*failAfter) error{
		"Chips":      func(w *failAfter) error { return Chips(w, chips) },
		"Strategies": func(w *failAfter) error { return Strategies(w) },
		"OptSummary": func(w *failAfter) error { return OptSummary(w) },
	}
	for name, render := range cases {
		t.Run(name, func(t *testing.T) {
			if err := render(&failAfter{n: 0}); !errors.Is(err, errPipe) {
				t.Errorf("%s on a dead writer returned %v, want errPipe", name, err)
			}
			if err := render(&failAfter{n: 1 << 20}); err != nil {
				t.Errorf("%s on a healthy writer returned %v", name, err)
			}
		})
	}
}
