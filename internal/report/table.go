// Package report renders the study's tables and figures as aligned
// text, mirroring the paper's presentation (Tables I-X, Figures 1-5).
// Every renderer takes computed analysis structures and an io.Writer;
// nothing here recomputes results.
package report

import (
	"fmt"
	"io"
	"strings"
)

// printer chains writes to an io.Writer and latches the first error,
// so renderers can write a whole block unconditionally and surface
// one failure at the end instead of threading an error through every
// line.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) f(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *printer) ln(args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintln(p.w, args...)
	}
}

func (p *printer) table(t *Table) {
	if p.err == nil {
		p.err = t.Render(p.w)
	}
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title  string
	header []string
	rows   [][]string
	align  []bool // true = right-align
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header, align: make([]bool, len(header))}
}

// RightAlign marks columns (by index) as right-aligned.
func (t *Table) RightAlign(cols ...int) *Table {
	for _, c := range cols {
		if c < len(t.align) {
			t.align[c] = true
		}
	}
	return t
}

// Row appends a row; cells are stringified with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
	return t
}

// Separator appends a horizontal rule row.
func (t *Table) Separator() *Table {
	t.rows = append(t.rows, nil)
	return t
}

// Markdown switches every Render call in the package to GitHub-style
// markdown tables. It exists for the CLI's -md flag; set it once at
// startup (it is not synchronised).
var Markdown bool

// Render writes the table: aligned text by default, a markdown pipe
// table when the package-level Markdown toggle is set. The first write
// error is returned.
func (t *Table) Render(w io.Writer) error {
	if Markdown {
		return t.RenderMarkdown(w)
	}
	p := &printer{w: w}
	t.renderText(p)
	return p.err
}

// RenderMarkdown writes the table as a GitHub-flavoured pipe table.
// Separator rows become em-dash rows (markdown has no mid-table rule).
func (t *Table) RenderMarkdown(w io.Writer) error {
	p := &printer{w: w}
	if t.Title != "" {
		p.f("**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		b.WriteString("|")
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		p.ln(b.String())
	}
	writeRow(t.header)
	var rule strings.Builder
	rule.WriteString("|")
	for i := range t.header {
		if i < len(t.align) && t.align[i] {
			rule.WriteString("---:|")
		} else {
			rule.WriteString("---|")
		}
	}
	p.ln(rule.String())
	for _, row := range t.rows {
		if row == nil {
			sep := make([]string, len(t.header))
			for i := range sep {
				sep[i] = "—"
			}
			writeRow(sep)
			continue
		}
		writeRow(row)
	}
	p.ln()
	return p.err
}

func (t *Table) renderText(p *printer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if t.Title != "" {
		p.f("%s\n", t.Title)
	}
	line := strings.Repeat("-", total)
	p.ln(line)
	t.renderRow(p, t.header, widths)
	p.ln(line)
	for _, row := range t.rows {
		if row == nil {
			p.ln(line)
			continue
		}
		t.renderRow(p, row, widths)
	}
	p.ln(line)
}

func (t *Table) renderRow(p *printer, row []string, widths []int) {
	var b strings.Builder
	for i, c := range row {
		wd := 0
		if i < len(widths) {
			wd = widths[i]
		}
		if i < len(t.align) && t.align[i] {
			fmt.Fprintf(&b, "%*s  ", wd, c)
		} else {
			fmt.Fprintf(&b, "%-*s  ", wd, c)
		}
	}
	p.ln(strings.TrimRight(b.String(), " "))
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Bar renders a proportional text bar of at most width cells.
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
