package gpuport

// Tests of the public facade: everything a downstream user touches
// through the root import path.

import (
	"bytes"
	"testing"
)

func TestRegistries(t *testing.T) {
	if got := len(Chips()); got != 6 {
		t.Errorf("Chips() = %d, want 6", got)
	}
	if got := len(Applications()); got != 17 {
		t.Errorf("Applications() = %d, want 17", got)
	}
	if got := len(StandardInputs()); got != 3 {
		t.Errorf("StandardInputs() = %d, want 3", got)
	}
	if got := len(Configurations()); got != 96 {
		t.Errorf("Configurations() = %d, want 96", got)
	}
	if got := len(AllDims()); got != 8 {
		t.Errorf("AllDims() = %d, want 8", got)
	}
}

func TestPublicStudyFlow(t *testing.T) {
	// A restricted end-to-end pass through the public API only.
	s, err := NewStudy(Options{
		Seed:   3,
		Runs:   3,
		Chips:  Chips()[4:6], // R9 and MALI
		Apps:   Applications()[:2],
		Inputs: StandardInputs()[2:3], // rand-8k
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dataset().Len() != 2*2*1*96 {
		t.Fatalf("records = %d", s.Dataset().Len())
	}

	global := s.Global()
	if global.Strategy.Name != "global" {
		t.Errorf("strategy name %q", global.Strategy.Name)
	}
	ranks := RankConfigs(s.Dataset())
	if len(ranks) != 95 {
		t.Errorf("ranks = %d", len(ranks))
	}
	evals, _ := s.Evaluations()
	if len(evals) != 10 {
		t.Errorf("evals = %d", len(evals))
	}

	// CSV round trip through the facade.
	var buf bytes.Buffer
	if err := s.Dataset().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := StudyFromDataset(d2)
	for _, tp := range s.Dataset().Tuples() {
		if s2.Oracle().Config(tp) != s.Oracle().Config(tp) {
			t.Errorf("oracle differs after CSV round trip on %v", tp)
		}
	}
}

func TestPublicMicrobenchmarks(t *testing.T) {
	sgcmb, mdivg := TableX(Chips())
	if len(sgcmb) != 6 || len(mdivg) != 6 {
		t.Fatalf("TableX sizes %d/%d", len(sgcmb), len(mdivg))
	}
	pts := LaunchOverhead(Chips()[0], []float64{1000, 1000000})
	if len(pts) != 2 || pts[0].Utilisation >= pts[1].Utilisation {
		t.Errorf("utilisation sweep broken: %+v", pts)
	}
}

func TestPublicFaultAPI(t *testing.T) {
	if p, err := ParseFaultProfile("none"); err != nil || p != nil {
		t.Errorf("ParseFaultProfile(none) = %v, %v", p, err)
	}
	p, err := ParseFaultProfile("light,seed=3")
	if err != nil || p == nil {
		t.Fatalf("ParseFaultProfile(light) = %v, %v", p, err)
	}
	chips := Chips()[:2]
	app := Applications()[0]
	o := Options{
		Seed:  9,
		Runs:  3,
		Chips: chips,
		Apps:  []App{app},
	}
	o.Faults = p
	d, rep, err := CollectWithReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 || rep == nil {
		t.Fatalf("CollectWithReport: len %d, report %v", d.Len(), rep)
	}
	if rep.Coverage() <= 0 || rep.Coverage() > 1 {
		t.Errorf("coverage = %v", rep.Coverage())
	}
	if !rep.Eventful() {
		t.Error("fault-injected run should be eventful")
	}
}
