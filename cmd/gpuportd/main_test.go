package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuport/internal/measure"
	"gpuport/internal/server"
)

// lineCapture forwards the first full stdout line (the listen banner)
// to a channel.
type lineCapture struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	ch   chan string
	sent bool
}

func (lc *lineCapture) Write(p []byte) (int, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.buf.Write(p)
	if !lc.sent {
		if line, _, ok := bytes.Cut(lc.buf.Bytes(), []byte("\n")); ok {
			lc.ch <- string(line)
			lc.sent = true
		}
	}
	return len(p), nil
}

// TestDaemonEndToEnd boots the daemon on an ephemeral port, drives a
// campaign over real HTTP and checks the result equals the CLI path
// (a direct measure campaign run) byte-for-byte.
func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lc := &lineCapture{ch: make(chan string, 1)}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-listen", "127.0.0.1:0",
			"-jobdir", t.TempDir(),
			"-trace-cache", t.TempDir(),
			"-campaigns", "2",
		}, lc)
	}()

	var base string
	select {
	case line := <-lc.ch:
		base = strings.TrimPrefix(line, "gpuportd listening on ")
	case err := <-errc:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never printed its listen banner")
	}
	if !strings.HasPrefix(base, "http://") {
		t.Fatalf("unexpected banner %q", base)
	}

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	specJSON := `{"seed":11,"runs":2,"chips":["M4000","MALI"],"apps":["sssp-nf"],"inputs":["rand-8k"],"configs":["baseline","wg,sz256"]}`
	resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var st server.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(base + "/v1/campaigns/" + st.ID + "/result?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	result, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("result = %d: %s", resp.StatusCode, result)
	}

	var spec server.Spec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		t.Fatal(err)
	}
	_, camp, serr := spec.Resolve()
	if serr != nil {
		t.Fatal(serr)
	}
	ds, _, err := camp.Run(context.Background(), measure.Env{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ds.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(result, want.Bytes()) {
		t.Fatal("daemon result differs from direct campaign run")
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonRejectsArgs pins the flag surface: stray positional
// arguments are an error, not silently ignored.
func TestDaemonRejectsArgs(t *testing.T) {
	err := run(context.Background(), []string{"sweep"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unexpected argument") {
		t.Fatalf("err = %v, want unexpected argument", err)
	}
}
