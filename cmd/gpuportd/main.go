// Command gpuportd is the sweep-as-a-service daemon: it accepts
// portability-study campaigns (chip set, app set, inputs, config
// subspace, fault profile) over HTTP/JSON, runs them concurrently on a
// shared trace cache, streams progress, persists results and
// checkpoints for instant cache answers and resume-after-restart, and
// exposes Prometheus metrics plus a Chrome trace of its own runners.
//
//	gpuportd -listen 127.0.0.1:8321 -jobdir /var/lib/gpuportd \
//	         -trace-cache /var/cache/gpuport
//
// See the README's "Running the server" section for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"gpuport/internal/obs"
	"gpuport/internal/server"
	"gpuport/internal/tracecache"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "gpuportd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gpuportd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8321", "address to serve the HTTP API on (use :0 for an ephemeral port)")
	campaigns := fs.Int("campaigns", 2, "campaigns executed concurrently")
	workers := fs.Int("workers", 0, "per-campaign trace and sweep workers (default GOMAXPROCS)")
	jobDir := fs.String("jobdir", "", "directory for persisted results and checkpoints (enables cache answers and resume)")
	cacheDir := fs.String("trace-cache", "", "directory for the shared content-addressed trace cache (created if missing)")
	cacheMB := fs.Int("trace-cache-mb", 0, "trace cache size cap in MiB (default 256)")
	obsTick := fs.Duration("obs-tick", 10*time.Second, "telemetry sampling period for the time-series store (0 disables ticking)")
	obsSim := fs.Bool("obs-sim", false, "capture the simulated kernel timeline in the debug trace (bulky)")
	obsWindow := fs.Int("obs-window", 0, "telemetry ticks retained per time series (default 360)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	rec := obs.New().EnableTracing()
	if *obsSim {
		rec.EnableSim()
	}
	cfg := server.Config{
		Ctx:           ctx,
		Campaigns:     *campaigns,
		Workers:       *workers,
		JobDir:        *jobDir,
		Obs:           rec,
		MetricsWindow: *obsWindow,
	}
	if *cacheDir != "" {
		store, err := tracecache.Open(*cacheDir, int64(*cacheMB)<<20)
		if err != nil {
			return err
		}
		cfg.TraceCache = store.SetObs(rec)
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	if *obsTick > 0 {
		// The daemon owns the telemetry clock: the store itself never
		// reads wall time, so tests can tick it virtually instead.
		go func() {
			t := time.NewTicker(*obsTick)
			defer t.Stop()
			start := time.Now()
			for {
				select {
				case <-ctx.Done():
					return
				case now := <-t.C:
					srv.Sample(now.Sub(start).Nanoseconds())
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "gpuportd listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		// Drain in-flight responses briefly, then stop; checkpointed
		// jobs resume on the next start.
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx) // best-effort: we are exiting either way
		return ctx.Err()
	case err := <-errc:
		return err
	}
}
