package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: gpuport
cpu: Some CPU @ 3.00GHz
BenchmarkTraces-4         	       5	 400000000 ns/op	        51.00 traces	24217728 B/op	  309934 allocs/op
BenchmarkTracesParallel-4 	       5	 150000000 ns/op	        51.00 traces
BenchmarkTracesCached-4   	      10	  20000000 ns/op	        51.00 traces
BenchmarkCollectFaultOverhead/no-fault-layer-4   	      20	  50000000 ns/op
BenchmarkCollectFaultOverhead/zero-rate-faults-4 	      20	  51000000 ns/op
PASS
ok  	gpuport	6.147s
`

// Single-CPU variant: Go omits the -N suffix when GOMAXPROCS is 1.
const sampleBench1CPU = `BenchmarkTraces         	       5	 400000000 ns/op
BenchmarkTracesParallel 	       5	 410000000 ns/op
BenchmarkTracesCached   	      10	  20000000 ns/op
PASS
`

func runCheck(t *testing.T, input string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, strings.NewReader(input), &out)
	return out.String(), err
}

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkTraces" || r.Procs != 4 || r.Iterations != 5 {
		t.Errorf("first result = %+v", r)
	}
	if r.NsPerOp != 4e8 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if r.Metrics["traces"] != 51 || r.Metrics["B/op"] != 24217728 {
		t.Errorf("metrics = %v", r.Metrics)
	}
	sub := results[3]
	if sub.Name != "BenchmarkCollectFaultOverhead/no-fault-layer" || sub.Procs != 4 {
		t.Errorf("subbench result = %+v", sub)
	}
}

func TestParseNoProcsSuffix(t *testing.T) {
	results, err := parse(strings.NewReader(sampleBench1CPU))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Name != "BenchmarkTraces" || results[0].Procs != 1 {
		t.Errorf("result = %+v", results[0])
	}
}

func TestSpeedupPassAndFail(t *testing.T) {
	out, err := runCheck(t, sampleBench,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,2.0",
		"-speedup", "BenchmarkTraces,BenchmarkTracesCached,10.0")
	if err != nil {
		t.Fatalf("passing assertions failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS speedup BenchmarkTracesParallel") {
		t.Errorf("output:\n%s", out)
	}

	out, err = runCheck(t, sampleBench,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,5.0")
	if err == nil {
		t.Fatalf("impossible speedup passed:\n%s", out)
	}
	if !strings.Contains(out, "FAIL speedup") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSpeedupCPUGuard(t *testing.T) {
	// On a single-CPU record, the parallel assertion is skipped (not a
	// silent pass): the machine cannot express the speedup.
	out, err := runCheck(t, sampleBench1CPU,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,2.0,4",
		"-speedup", "BenchmarkTraces,BenchmarkTracesCached,10.0")
	if err != nil {
		t.Fatalf("guarded run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "SKIP speedup BenchmarkTracesParallel vs BenchmarkTraces: needs >= 4 CPUs") {
		t.Errorf("output:\n%s", out)
	}

	// With enough CPUs the same spec binds.
	out, err = runCheck(t, sampleBench,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,2.0,4")
	if err != nil || !strings.Contains(out, "PASS speedup") {
		t.Errorf("err=%v output:\n%s", err, out)
	}
}

func TestMaxRatioGuard(t *testing.T) {
	out, err := runCheck(t, sampleBench,
		"-maxratio", "BenchmarkCollectFaultOverhead/no-fault-layer,BenchmarkCollectFaultOverhead/zero-rate-faults,1.5")
	if err != nil {
		t.Fatalf("1.02x ratio failed a 1.5x bound: %v\n%s", err, out)
	}
	out, err = runCheck(t, sampleBench,
		"-maxratio", "BenchmarkCollectFaultOverhead/no-fault-layer,BenchmarkCollectFaultOverhead/zero-rate-faults,1.01")
	if err == nil {
		t.Fatalf("drifted ratio passed:\n%s", out)
	}
	if !strings.Contains(out, "FAIL ratio") {
		t.Errorf("output:\n%s", out)
	}
}

// Repeated benchmark lines, as emitted by `go test -count=3`: the
// folded figures (min ns/op per name) are what assertions bind on.
const sampleBenchRepeats = `BenchmarkSweepReference 	     300	   5200000 ns/op
BenchmarkSweepReference 	     300	   5000000 ns/op
BenchmarkSweepReference 	     300	   6800000 ns/op
BenchmarkSweepColumnar  	     300	    900000 ns/op
BenchmarkSweepColumnar  	     300	    480000 ns/op
BenchmarkSweepColumnar  	     300	    500000 ns/op
PASS
`

func TestCountFolding(t *testing.T) {
	// min(ref)=5.0e6, min(col)=4.8e5: speedup 10.42x. Pairing the
	// noisiest repeats instead (6.8e6, 9e5) would give 7.6x and a
	// first-line pairing 5.78x; only the folded minimum passes 10.3.
	out, err := runCheck(t, sampleBenchRepeats,
		"-speedup", "BenchmarkSweepReference,BenchmarkSweepColumnar,10.3")
	if err != nil {
		t.Fatalf("folded speedup failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS speedup BenchmarkSweepColumnar vs BenchmarkSweepReference: 10.42x") {
		t.Errorf("output:\n%s", out)
	}

	// The JSON record keeps every repeat verbatim.
	path := filepath.Join(t.TempDir(), "bench.json")
	if _, err := runCheck(t, sampleBenchRepeats, "-json", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Results) != 6 {
		t.Errorf("record kept %d results, want all 6 repeats", len(rec.Results))
	}
}

// TestSkipVisibility: a CPU-guarded skip names the observed CPU count
// on its line and is restated in the end-of-run summary - a gate that
// never binds is explicit, not silent.
func TestSkipVisibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	out, err := runCheck(t, sampleBench1CPU, "-json", path,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,2.0,4")
	if err != nil {
		t.Fatalf("guarded run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "needs >= 4 CPUs, record ran with 1") {
		t.Errorf("SKIP line lacks the observed CPU count:\n%s", out)
	}
	if !strings.Contains(out, "1 gate(s) not exercised on this machine:") ||
		!strings.Contains(out, "- speedup BenchmarkTracesParallel vs BenchmarkTraces (needs >= 4 CPUs, record ran with 1)") {
		t.Errorf("missing end-of-run skip summary:\n%s", out)
	}

	var rec record
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if a := rec.Assertions[0]; a.Status != "skipped" || a.SeenCPUs != 1 {
		t.Errorf("assertion = %+v, want skipped with seen_cpus 1", a)
	}

	// No skips: no summary block.
	out, err = runCheck(t, sampleBench,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,2.0,4")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "not exercised") {
		t.Errorf("spurious skip summary:\n%s", out)
	}
}

// TestMarkdownTable: -md appends a benchmark/ns-op/gate/verdict table,
// and a second invocation extends the same file rather than clobbering
// it, the way successive make targets share one $GITHUB_STEP_SUMMARY.
func TestMarkdownTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "summary.md")
	out, err := runCheck(t, sampleBenchRepeats, "-md", path,
		"-speedup", "BenchmarkSweepReference,BenchmarkSweepColumnar,10.3")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{
		"| benchmark | ns/op | gate | verdict |",
		"| BenchmarkSweepReference | 5000000 | - | recorded |",
		"| BenchmarkSweepColumnar | 480000 | speedup vs BenchmarkSweepReference: 10.42x (want >= 10.30x) | PASS |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown lacks %q:\n%s", want, md)
		}
	}

	if _, err := runCheck(t, sampleBench1CPU, "-md", path,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,2.0,4"); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	md = string(data)
	if !strings.Contains(md, "BenchmarkSweepColumnar") || !strings.Contains(md, "BenchmarkTracesParallel") {
		t.Errorf("second -md run clobbered the first table:\n%s", md)
	}
	if !strings.Contains(md, "(needs >= 4 CPUs, ran with 1) | SKIPPED |") {
		t.Errorf("markdown hides the skipped gate:\n%s", md)
	}
}

func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if _, err := runCheck(t, sampleBench,
		"-json", path,
		"-speedup", "BenchmarkTraces,BenchmarkTracesCached,10.0"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Results) != 5 || len(rec.Assertions) != 1 {
		t.Fatalf("record = %d results, %d assertions", len(rec.Results), len(rec.Assertions))
	}
	a := rec.Assertions[0]
	if a.Status != "pass" || a.Factor != 20 {
		t.Errorf("assertion = %+v", a)
	}
}

func TestInputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.out")
	if err := os.WriteFile(path, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		input string
		args  []string
	}{
		{"", nil}, // no results
		{sampleBench, []string{"-speedup", "bad"}},
		{sampleBench, []string{"-speedup", "a,b,notanumber"}},
		{sampleBench, []string{"-speedup", "BenchmarkTraces,BenchmarkNope,2.0"}},
		{sampleBench, []string{"-maxratio", "only,two"}},
		{sampleBench, []string{"-maxratio", "BenchmarkNope,BenchmarkTraces,1.5"}},
		{sampleBench, []string{"stray-arg"}},
		{"BenchmarkX 5 garbage ns/op\n", nil},
	}
	for _, c := range cases {
		if _, err := runCheck(t, c.input, c.args...); err == nil {
			t.Errorf("run(%v) on %q should fail", c.args, c.input[:min(20, len(c.input))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
