package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: gpuport
cpu: Some CPU @ 3.00GHz
BenchmarkTraces-4         	       5	 400000000 ns/op	        51.00 traces	24217728 B/op	  309934 allocs/op
BenchmarkTracesParallel-4 	       5	 150000000 ns/op	        51.00 traces
BenchmarkTracesCached-4   	      10	  20000000 ns/op	        51.00 traces
BenchmarkCollectFaultOverhead/no-fault-layer-4   	      20	  50000000 ns/op
BenchmarkCollectFaultOverhead/zero-rate-faults-4 	      20	  51000000 ns/op
PASS
ok  	gpuport	6.147s
`

// Single-CPU variant: Go omits the -N suffix when GOMAXPROCS is 1.
const sampleBench1CPU = `BenchmarkTraces         	       5	 400000000 ns/op
BenchmarkTracesParallel 	       5	 410000000 ns/op
BenchmarkTracesCached   	      10	  20000000 ns/op
PASS
`

func runCheck(t *testing.T, input string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, strings.NewReader(input), &out)
	return out.String(), err
}

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkTraces" || r.Procs != 4 || r.Iterations != 5 {
		t.Errorf("first result = %+v", r)
	}
	if r.NsPerOp != 4e8 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if r.Metrics["traces"] != 51 || r.Metrics["B/op"] != 24217728 {
		t.Errorf("metrics = %v", r.Metrics)
	}
	sub := results[3]
	if sub.Name != "BenchmarkCollectFaultOverhead/no-fault-layer" || sub.Procs != 4 {
		t.Errorf("subbench result = %+v", sub)
	}
}

func TestParseNoProcsSuffix(t *testing.T) {
	results, err := parse(strings.NewReader(sampleBench1CPU))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Name != "BenchmarkTraces" || results[0].Procs != 1 {
		t.Errorf("result = %+v", results[0])
	}
}

func TestSpeedupPassAndFail(t *testing.T) {
	out, err := runCheck(t, sampleBench,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,2.0",
		"-speedup", "BenchmarkTraces,BenchmarkTracesCached,10.0")
	if err != nil {
		t.Fatalf("passing assertions failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS speedup BenchmarkTracesParallel") {
		t.Errorf("output:\n%s", out)
	}

	out, err = runCheck(t, sampleBench,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,5.0")
	if err == nil {
		t.Fatalf("impossible speedup passed:\n%s", out)
	}
	if !strings.Contains(out, "FAIL speedup") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSpeedupCPUGuard(t *testing.T) {
	// On a single-CPU record, the parallel assertion is skipped (not a
	// silent pass): the machine cannot express the speedup.
	out, err := runCheck(t, sampleBench1CPU,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,2.0,4",
		"-speedup", "BenchmarkTraces,BenchmarkTracesCached,10.0")
	if err != nil {
		t.Fatalf("guarded run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "SKIP speedup BenchmarkTracesParallel vs BenchmarkTraces: needs >= 4 CPUs") {
		t.Errorf("output:\n%s", out)
	}

	// With enough CPUs the same spec binds.
	out, err = runCheck(t, sampleBench,
		"-speedup", "BenchmarkTraces,BenchmarkTracesParallel,2.0,4")
	if err != nil || !strings.Contains(out, "PASS speedup") {
		t.Errorf("err=%v output:\n%s", err, out)
	}
}

func TestMaxRatioGuard(t *testing.T) {
	out, err := runCheck(t, sampleBench,
		"-maxratio", "BenchmarkCollectFaultOverhead/no-fault-layer,BenchmarkCollectFaultOverhead/zero-rate-faults,1.5")
	if err != nil {
		t.Fatalf("1.02x ratio failed a 1.5x bound: %v\n%s", err, out)
	}
	out, err = runCheck(t, sampleBench,
		"-maxratio", "BenchmarkCollectFaultOverhead/no-fault-layer,BenchmarkCollectFaultOverhead/zero-rate-faults,1.01")
	if err == nil {
		t.Fatalf("drifted ratio passed:\n%s", out)
	}
	if !strings.Contains(out, "FAIL ratio") {
		t.Errorf("output:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if _, err := runCheck(t, sampleBench,
		"-json", path,
		"-speedup", "BenchmarkTraces,BenchmarkTracesCached,10.0"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Results) != 5 || len(rec.Assertions) != 1 {
		t.Fatalf("record = %d results, %d assertions", len(rec.Results), len(rec.Assertions))
	}
	a := rec.Assertions[0]
	if a.Status != "pass" || a.Factor != 20 {
		t.Errorf("assertion = %+v", a)
	}
}

func TestInputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.out")
	if err := os.WriteFile(path, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		input string
		args  []string
	}{
		{"", nil}, // no results
		{sampleBench, []string{"-speedup", "bad"}},
		{sampleBench, []string{"-speedup", "a,b,notanumber"}},
		{sampleBench, []string{"-speedup", "BenchmarkTraces,BenchmarkNope,2.0"}},
		{sampleBench, []string{"-maxratio", "only,two"}},
		{sampleBench, []string{"-maxratio", "BenchmarkNope,BenchmarkTraces,1.5"}},
		{sampleBench, []string{"stray-arg"}},
		{"BenchmarkX 5 garbage ns/op\n", nil},
	}
	for _, c := range cases {
		if _, err := runCheck(t, c.input, c.args...); err == nil {
			t.Errorf("run(%v) on %q should fail", c.args, c.input[:min(20, len(c.input))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
