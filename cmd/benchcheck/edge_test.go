package main

import (
	"strings"
	"testing"
)

// Table-driven edge cases for the benchmark-output parser. The parser
// sits between `go test -bench` and the CI gates, so what it does with
// degenerate input decides whether a broken benchmark run fails loudly
// (good) or silently passes the gate (very bad). Each case pins one
// behaviour: what is skipped as chatter, what is a hard parse error,
// and what the run driver does when nothing parses at all.
func TestParseEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		want    int    // parsed results (when wantErr == "")
		wantErr string // substring of the expected parse error
		check   func(t *testing.T, results []result)
	}{
		{
			name:  "empty input",
			input: "",
			want:  0,
		},
		{
			name: "headers and chatter only",
			input: "goos: linux\ngoarch: amd64\npkg: gpuport\n" +
				"cpu: Some CPU @ 3.00GHz\nPASS\nok  \tgpuport\t1.2s\n",
			want: 0,
		},
		{
			name: "slash names keep sub-benchmark path and strip procs",
			input: "BenchmarkA/sub-case/deep-8 \t 10\t 100 ns/op\n" +
				"BenchmarkA/other-name 	 10	 200 ns/op\n",
			want: 2,
			check: func(t *testing.T, rs []result) {
				if rs[0].Name != "BenchmarkA/sub-case/deep" || rs[0].Procs != 8 {
					t.Errorf("slash+procs name parsed as %+v", rs[0])
				}
				// "-name" ends in a non-numeric suffix: it is part of the
				// benchmark's own name, not a GOMAXPROCS marker.
				if rs[1].Name != "BenchmarkA/other-name" || rs[1].Procs != 1 {
					t.Errorf("hyphenated name parsed as %+v", rs[1])
				}
			},
		},
		{
			name:  "missing allocs columns still parses ns/op",
			input: "BenchmarkLean-2 \t 100\t 5000 ns/op\n",
			want:  1,
			check: func(t *testing.T, rs []result) {
				if rs[0].NsPerOp != 5000 || len(rs[0].Metrics) != 0 {
					t.Errorf("lean line parsed as %+v", rs[0])
				}
			},
		},
		{
			name:  "full allocs columns become metrics",
			input: "BenchmarkFat-2 \t 100\t 5000 ns/op\t 2048 B/op\t 17 allocs/op\n",
			want:  1,
			check: func(t *testing.T, rs []result) {
				if rs[0].Metrics["B/op"] != 2048 || rs[0].Metrics["allocs/op"] != 17 {
					t.Errorf("alloc metrics = %v", rs[0].Metrics)
				}
			},
		},
		{
			name: "FAIL chatter on a benchmark line is skipped",
			input: "BenchmarkBroken--- FAIL: BenchmarkBroken\nBenchmarkBroken \t--- FAIL rest of line\n" +
				"BenchmarkOK-2 \t 10\t 100 ns/op\n",
			want: 1,
			check: func(t *testing.T, rs []result) {
				if rs[0].Name != "BenchmarkOK" {
					t.Errorf("survivor = %+v", rs[0])
				}
			},
		},
		{
			name:    "benchmark line without ns/op is an error",
			input:   "BenchmarkNoTime-2 \t 10\t 51.00 traces\t 2048 B/op\n",
			wantErr: "no ns/op",
		},
		{
			name:    "malformed value column is an error",
			input:   "BenchmarkBadValue-2 \t 10\t abc ns/op\n",
			wantErr: "bad value",
		},
		{
			name: "truncated line (iterations only) is skipped as chatter",
			// Two fields is below the 4-field minimum for a benchmark
			// line; treating it as chatter (not an error) matches how go
			// test interleaves progress output.
			input: "BenchmarkTruncated-2 \t 10\nBenchmarkOK-2 \t 10\t 100 ns/op\n",
			want:  1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, err := parse(strings.NewReader(tc.input))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if len(results) != tc.want {
				t.Fatalf("parsed %d results, want %d: %+v", len(results), tc.want, results)
			}
			if tc.check != nil {
				tc.check(t, results)
			}
		})
	}
}

// TestRunRejectsEmptyBench: a bench run that produced no parseable
// results must fail the gate rather than vacuously pass it.
func TestRunRejectsEmptyBench(t *testing.T) {
	_, err := runCheck(t, "PASS\nok  \tgpuport\t0.1s\n")
	if err == nil || !strings.Contains(err.Error(), "no benchmark results") {
		t.Fatalf("err = %v, want 'no benchmark results'", err)
	}
}

// TestAssertionAgainstMissingBenchmark: naming an absent benchmark in a
// gate is a hard error listing what was found, not a silent skip.
func TestAssertionAgainstMissingBenchmark(t *testing.T) {
	input := "BenchmarkOnly-2 \t 10\t 100 ns/op\n"
	_, err := runCheck(t, input, "-speedup", "BenchmarkOnly,BenchmarkGone,2.0")
	if err == nil || !strings.Contains(err.Error(), `"BenchmarkGone" not in input`) {
		t.Fatalf("err = %v, want missing-benchmark error", err)
	}
	if !strings.Contains(err.Error(), "BenchmarkOnly") {
		t.Fatalf("err = %v, want the have-list to name BenchmarkOnly", err)
	}
}
