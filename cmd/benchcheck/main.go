// Command benchcheck parses `go test -bench` text output, records the
// results as JSON, and enforces relative performance gates between
// named benchmarks. It is the regression tripwire behind `make
// bench-trace` and `make bench-ci`: absolute nanoseconds vary across
// machines, but the *ratios* the design guarantees (parallel tracing
// beats serial, a warm cache beats cold tracing, the zero-rate fault
// layer costs nothing) must hold everywhere they can be observed.
//
// Usage:
//
//	benchcheck [-in bench.out] [-json out.json] \
//	    [-speedup slow,fast,minfactor[,mincpus]]... \
//	    [-maxratio base,probe,maxfactor]...
//
// -speedup asserts ns/op(slow) / ns/op(fast) >= minfactor. The
// optional mincpus guard skips the assertion (with a note) when the
// recording machine ran with fewer CPUs: a 4-worker pool cannot beat
// serial on a single core, so the gate only binds where parallelism
// is physically possible. The CPU count is taken from the -N
// GOMAXPROCS suffix Go appends to benchmark names.
//
// -maxratio asserts ns/op(probe) / ns/op(base) <= maxfactor; it gates
// overhead claims such as "zero-rate fault injection is free".
//
// When the input carries repeats of the same benchmark (go test
// -count=N), assertions bind on the minimum ns/op per name,
// benchstat-style: the minimum is the run least disturbed by the
// machine, so gates compare steady-state figures instead of whichever
// repeat a scheduler hiccup landed on. The JSON record keeps every
// repeat verbatim.
//
// -md appends a markdown results table (benchmark, ns/op, gate,
// verdict) to the named file; pointing it at $GITHUB_STEP_SUMMARY
// surfaces the table on the workflow run page. Skipped gates are
// always listed explicitly - on the SKIP line (with the observed CPU
// count), in the JSON record, and in an end-of-run summary - so a
// guard that never binds anywhere is visible, not silent.
//
// Exit status is non-zero if any binding assertion fails or a named
// benchmark is missing from the input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// record is the BENCH_*.json document: the parsed results plus the
// assertions that were checked against them, so a stored artifact is
// self-describing.
type record struct {
	Results    []result `json:"results"`
	Assertions []assert `json:"assertions,omitempty"`
}

type assert struct {
	Kind     string  `json:"kind"` // "speedup" or "maxratio"
	Base     string  `json:"base"`
	Probe    string  `json:"probe"`
	Bound    float64 `json:"bound"`
	MinCPUs  int     `json:"min_cpus,omitempty"`
	SeenCPUs int     `json:"seen_cpus,omitempty"` // CPUs the record ran with (CPU-guarded gates)
	Factor   float64 `json:"factor"`              // observed ratio, 0 when skipped
	Status   string  `json:"status"`              // "pass", "fail", "skipped"
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	inPath := fs.String("in", "", "bench output file (default stdin)")
	jsonPath := fs.String("json", "", "write parsed results as JSON to this file")
	mdPath := fs.String("md", "", "append a markdown results table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	var speedups, maxratios multiFlag
	fs.Var(&speedups, "speedup", "slow,fast,minfactor[,mincpus] assertion (repeatable)")
	fs.Var(&maxratios, "maxratio", "base,probe,maxfactor assertion (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	in := stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}

	rec := record{Results: results}
	folded := fold(results)
	failed := 0
	for _, spec := range speedups {
		a, err := checkSpeedup(folded, spec)
		if err != nil {
			return err
		}
		rec.Assertions = append(rec.Assertions, a)
		failed += report(stdout, a)
	}
	for _, spec := range maxratios {
		a, err := checkMaxRatio(folded, spec)
		if err != nil {
			return err
		}
		rec.Assertions = append(rec.Assertions, a)
		failed += report(stdout, a)
	}
	reportSkips(stdout, rec.Assertions)

	if *mdPath != "" {
		if err := appendMarkdown(*mdPath, folded, rec.Assertions); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchcheck: %d results -> %s\n", len(results), *jsonPath)
	}
	if failed > 0 {
		return fmt.Errorf("%d assertion(s) failed", failed)
	}
	return nil
}

// parse reads `go test -bench` text output. A benchmark line is
//
//	BenchmarkName[-procs] <iters> <value> <unit> [<value> <unit>]...
//
// Non-benchmark lines (goos/pkg headers, PASS, ok) are ignored.
func parse(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX ... FAIL" chatter
		}
		res := result{Name: f[0], Procs: 1, Iterations: iters, Metrics: map[string]float64{}}
		// Go appends "-N" (GOMAXPROCS) to the name when N != 1.
		if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
			if n, err := strconv.Atoi(res.Name[i+1:]); err == nil && n > 0 {
				res.Name, res.Procs = res.Name[:i], n
			}
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", f[i], sc.Text())
			}
			if f[i+1] == "ns/op" {
				res.NsPerOp = v
			} else {
				res.Metrics[f[i+1]] = v
			}
		}
		if res.NsPerOp == 0 {
			return nil, fmt.Errorf("benchmark %s has no ns/op", res.Name)
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// fold collapses -count repeats to one result per name holding the
// minimum ns/op, in first-seen order. Assertions and the markdown
// table bind on folded figures; the JSON record keeps the repeats.
func fold(results []result) []result {
	idx := map[string]int{}
	var out []result
	for _, r := range results {
		if i, ok := idx[r.Name]; ok {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		idx[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

func find(results []result, name string) (result, error) {
	for _, r := range results {
		if r.Name == name {
			return r, nil
		}
	}
	var have []string
	for _, r := range results {
		have = append(have, r.Name)
	}
	sort.Strings(have)
	return result{}, fmt.Errorf("benchmark %q not in input (have: %s)", name, strings.Join(have, ", "))
}

// checkSpeedup parses "slow,fast,minfactor[,mincpus]" and evaluates it.
func checkSpeedup(results []result, spec string) (assert, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 && len(parts) != 4 {
		return assert{}, fmt.Errorf("bad -speedup spec %q (want slow,fast,minfactor[,mincpus])", spec)
	}
	bound, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || bound <= 0 {
		return assert{}, fmt.Errorf("bad -speedup factor in %q", spec)
	}
	minCPUs := 0
	if len(parts) == 4 {
		if minCPUs, err = strconv.Atoi(parts[3]); err != nil || minCPUs < 1 {
			return assert{}, fmt.Errorf("bad -speedup mincpus in %q", spec)
		}
	}
	slow, err := find(results, parts[0])
	if err != nil {
		return assert{}, err
	}
	fast, err := find(results, parts[1])
	if err != nil {
		return assert{}, err
	}
	a := assert{Kind: "speedup", Base: slow.Name, Probe: fast.Name, Bound: bound, MinCPUs: minCPUs}
	if minCPUs > 0 {
		a.SeenCPUs = fast.Procs
	}
	if minCPUs > 0 && fast.Procs < minCPUs {
		a.Status = "skipped"
		return a, nil
	}
	a.Factor = slow.NsPerOp / fast.NsPerOp
	a.Status = "fail"
	if a.Factor >= bound {
		a.Status = "pass"
	}
	return a, nil
}

// checkMaxRatio parses "base,probe,maxfactor" and evaluates it.
func checkMaxRatio(results []result, spec string) (assert, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return assert{}, fmt.Errorf("bad -maxratio spec %q (want base,probe,maxfactor)", spec)
	}
	bound, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || bound <= 0 {
		return assert{}, fmt.Errorf("bad -maxratio factor in %q", spec)
	}
	base, err := find(results, parts[0])
	if err != nil {
		return assert{}, err
	}
	probe, err := find(results, parts[1])
	if err != nil {
		return assert{}, err
	}
	a := assert{Kind: "maxratio", Base: base.Name, Probe: probe.Name, Bound: bound}
	a.Factor = probe.NsPerOp / base.NsPerOp
	a.Status = "fail"
	if a.Factor <= bound {
		a.Status = "pass"
	}
	return a, nil
}

func report(w io.Writer, a assert) int {
	switch {
	case a.Status == "skipped":
		fmt.Fprintf(w, "SKIP %s %s vs %s: needs >= %d CPUs, record ran with %d\n",
			a.Kind, a.Probe, a.Base, a.MinCPUs, a.SeenCPUs)
	case a.Kind == "speedup":
		fmt.Fprintf(w, "%s speedup %s vs %s: %.2fx (want >= %.2fx)\n",
			strings.ToUpper(a.Status), a.Probe, a.Base, a.Factor, a.Bound)
	default:
		fmt.Fprintf(w, "%s ratio %s vs %s: %.3fx (want <= %.2fx)\n",
			strings.ToUpper(a.Status), a.Probe, a.Base, a.Factor, a.Bound)
	}
	if a.Status == "fail" {
		return 1
	}
	return 0
}

// reportSkips restates every skipped gate at the end of the run. The
// per-assertion SKIP line can scroll away in CI logs; an unconditional
// closing summary makes "this machine never exercised gate X" a fact
// the reader must step over, not hunt for.
func reportSkips(w io.Writer, asserts []assert) {
	var skipped []assert
	for _, a := range asserts {
		if a.Status == "skipped" {
			skipped = append(skipped, a)
		}
	}
	if len(skipped) == 0 {
		return
	}
	fmt.Fprintf(w, "benchcheck: %d gate(s) not exercised on this machine:\n", len(skipped))
	for _, a := range skipped {
		fmt.Fprintf(w, "  - %s %s vs %s (needs >= %d CPUs, record ran with %d)\n",
			a.Kind, a.Probe, a.Base, a.MinCPUs, a.SeenCPUs)
	}
}

// gateCell renders an assertion as the gate a probe benchmark sits
// behind, for the markdown table.
func gateCell(a assert) string {
	switch a.Kind {
	case "speedup":
		if a.Status == "skipped" {
			return fmt.Sprintf("speedup vs %s >= %.2fx (needs >= %d CPUs, ran with %d)",
				a.Base, a.Bound, a.MinCPUs, a.SeenCPUs)
		}
		return fmt.Sprintf("speedup vs %s: %.2fx (want >= %.2fx)", a.Base, a.Factor, a.Bound)
	default:
		return fmt.Sprintf("ratio vs %s: %.3fx (want <= %.2fx)", a.Base, a.Factor, a.Bound)
	}
}

// appendMarkdown appends a results table - benchmark, ns/op, gate,
// verdict - to path. Appending (not truncating) lets several
// benchcheck invocations share one $GITHUB_STEP_SUMMARY.
func appendMarkdown(path string, results []result, asserts []assert) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("| benchmark | ns/op | gate | verdict |\n|---|---:|---|---|\n")
	for _, r := range results {
		gates, verdict := "-", "recorded"
		for _, a := range asserts {
			if a.Probe != r.Name {
				continue
			}
			if gates == "-" {
				gates, verdict = gateCell(a), strings.ToUpper(a.Status)
			} else {
				gates += "; " + gateCell(a)
			}
			if a.Status == "fail" || (a.Status == "skipped" && verdict != "FAIL") {
				verdict = strings.ToUpper(a.Status)
			}
		}
		fmt.Fprintf(&b, "| %s | %.0f | %s | %s |\n", r.Name, r.NsPerOp, gates, verdict)
	}
	b.WriteString("\n")
	if _, err := f.WriteString(b.String()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
