// Command faultsim stress-tests the measurement harness: it runs a
// reduced sweep under an injected fault profile (internal/fault) and
// reports what the self-healing machinery absorbed - retries, sample
// quarantines, backoff time - and what was lost, with per-tuple
// coverage for everything missing. With -compare it additionally runs
// the same sweep fault-free and quantifies how far the degraded
// analysis drifts from the clean one, judged against the documented
// tolerance floors in internal/analysis.
//
// Usage:
//
//	faultsim                         light faults on the default sweep
//	faultsim -faults heavy           whole-chip dropout and high rates
//	faultsim -faults transient=0.2,retries=1 -compare
//	faultsim -resume ck.csv          checkpoint/resume the campaign
//
// Flags:
//
//	-faults spec  fault profile: light (default), heavy, none, or
//	              key=value pairs (transient=, hang=, corrupt=,
//	              dropout=, seed=, retries=, backoff=, cap=, timeout=)
//	-seed N       measurement noise seed (default 42)
//	-runs N       timed runs per cell (default 3)
//	-chips N      sweep the first N chips (default 3)
//	-apps N       sweep the first N applications (default 4)
//	-nodes N      size of the generated input graphs (default 600)
//	-workers N    collection workers (default GOMAXPROCS)
//	-resume file  checkpoint CSV for interrupt/resume
//	-compare      also run fault-free and report analysis drift
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"gpuport/internal/analysis"
	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/fault"
	"gpuport/internal/graph"
	"gpuport/internal/measure"
	"gpuport/internal/report"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "faultsim: interrupted; completed shards are saved when -resume is set")
		} else {
			fmt.Fprintln(os.Stderr, "faultsim:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	spec := fs.String("faults", "light", "fault profile: none, light, heavy, or key=value pairs")
	seed := fs.Uint64("seed", 42, "measurement noise seed")
	runs := fs.Int("runs", 3, "timed runs per cell")
	nchips := fs.Int("chips", 3, "sweep the first N chips")
	napps := fs.Int("apps", 4, "sweep the first N applications")
	nodes := fs.Int("nodes", 600, "generated input graph size")
	workers := fs.Int("workers", 0, "collection workers (default GOMAXPROCS)")
	resume := fs.String("resume", "", "checkpoint CSV for interrupt/resume")
	compare := fs.Bool("compare", false, "also run fault-free and report analysis drift")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := fault.Parse(*spec)
	if err != nil {
		return err
	}
	allChips, allApps := chip.All(), apps.All()
	if *nchips < 1 || *nchips > len(allChips) {
		return fmt.Errorf("-chips wants 1..%d", len(allChips))
	}
	if *napps < 1 || *napps > len(allApps) {
		return fmt.Errorf("-apps wants 1..%d", len(allApps))
	}
	if *nodes < 10 {
		return fmt.Errorf("-nodes wants at least 10")
	}

	opts := measure.Options{
		Seed:    *seed,
		Runs:    *runs,
		Chips:   allChips[:*nchips],
		Apps:    allApps[:*napps],
		Ctx:     ctx,
		Workers: *workers,
		Inputs: []*graph.Graph{
			graph.GenerateUniform("fs-uni", *nodes, 5, 11),
			graph.GenerateRoad("fs-road", isqrt(*nodes), 2),
		},
	}
	faulted := opts
	faulted.Faults = profile
	faulted.Checkpoint = *resume

	d, rep, err := measure.CollectReport(faulted)
	if err != nil {
		return err
	}
	for _, err := range []error{
		report.TuplesSummary(w, d),
		report.Coverage(w, rep),
		report.FaultSummary(w, rep),
		report.PartialTuples(w, d),
	} {
		if err != nil {
			return err
		}
	}

	if !*compare {
		return nil
	}
	if profile == nil {
		fmt.Fprintln(w, "nothing to compare: no faults injected")
		return nil
	}
	clean, err := measure.Collect(opts)
	if err != nil {
		return err
	}
	agree, undecided := analysis.AgreementBetween(
		analysis.Specialise(clean, analysis.Dims{Chip: true}),
		analysis.Specialise(d, analysis.Dims{Chip: true}))
	tau := analysis.RankCorrelation(analysis.RankConfigs(clean), analysis.RankConfigs(d))

	t := report.NewTable("Analysis drift under faults (clean sweep as reference)",
		"Metric", "Value", "Floor", "Verdict").RightAlign(1, 2)
	verdict := func(v, floor float64) string {
		if v >= floor {
			return "ok"
		}
		return "DEGRADED"
	}
	t.Row("per-chip decision agreement", report.F(agree*100, 1)+"%",
		report.F(analysis.FaultAgreementFloor*100, 0)+"%",
		verdict(agree, analysis.FaultAgreementFloor))
	t.Row("decisions left undecided", report.F(undecided*100, 1)+"%", "-", "-")
	t.Row("Table III rank correlation (tau)", report.F(tau, 3),
		report.F(analysis.FaultRankTauFloor, 2),
		verdict(tau, analysis.FaultRankTauFloor))
	return t.Render(w)
}

// isqrt returns the integer square root, used to size the road grid so
// it has roughly -nodes nodes.
func isqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
