package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

// small shrinks the sweep so tests run in milliseconds.
func small(args ...string) []string {
	return append([]string{"-chips", "2", "-apps", "2", "-nodes", "120"}, args...)
}

func TestDefaultCampaign(t *testing.T) {
	out := runSim(t, small()...)
	for _, want := range []string{"dataset:", "coverage:", "fault profile:", "Fault-injection campaign"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHeavyCampaignReportsLoss(t *testing.T) {
	out := runSim(t, small("-faults", "heavy,seed=3")...)
	for _, want := range []string{"Missing cells by failure kind", "dropped out at cell", "Partially covered tuples"} {
		if !strings.Contains(out, want) {
			t.Errorf("heavy campaign output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareVerdicts(t *testing.T) {
	out := runSim(t, small("-faults", "light,seed=5", "-compare")...)
	if !strings.Contains(out, "Analysis drift under faults") {
		t.Fatalf("no drift table:\n%s", out)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("light faults should stay within the floors:\n%s", out)
	}
}

func TestCompareWithoutFaults(t *testing.T) {
	out := runSim(t, small("-faults", "none", "-compare")...)
	if !strings.Contains(out, "nothing to compare") {
		t.Errorf("fault-free compare should say so:\n%s", out)
	}
}

func TestResumeRoundTrip(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.csv")
	runSim(t, small("-faults", "light,seed=2", "-resume", ck)...)
	if st, err := os.Stat(ck); err != nil || st.Size() == 0 {
		t.Fatalf("checkpoint not written: %v", err)
	}
	out := runSim(t, small("-faults", "light,seed=2", "-resume", ck)...)
	if !strings.Contains(out, "resumed from checkpoint") {
		t.Errorf("second run did not resume:\n%s", out)
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-faults", "wat=1"},
		{"-chips", "0"},
		{"-apps", "99"},
		{"-nodes", "3"},
	} {
		var buf bytes.Buffer
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("run(%v) accepted bad flags", args)
		}
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := run(ctx, small(), &buf); err == nil {
		t.Fatal("cancelled context not propagated")
	}
}
