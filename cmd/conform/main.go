// Command conform runs the differential conformance engine
// (internal/conform): randomized cross-validation of the 17
// applications against their sequential references, plus the
// metamorphic property registry over the cost model, the chip table and
// the optimisation space.
//
// The JSON report on stdout is byte-identical across runs with equal
// flags; the exit status is 1 when any conformance failure was found.
//
//	conform -trials 200 -seed 1              # full run, JSON on stdout
//	conform -props cost-finite-positive      # one property only
//	conform -list                            # registered property names
//	conform -repro 0xdeadbeef                # regenerate one trial graph
//	                                         # and re-run the apps on it
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpuport/internal/apps"
	"gpuport/internal/conform"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("conform", flag.ContinueOnError)
	trials := fs.Int("trials", 100, "trial budget per pillar")
	seed := fs.Uint64("seed", 1, "master seed; all randomness derives from it")
	props := fs.String("props", "", "comma-separated property names to run (default all)")
	appsFlag := fs.String("apps", "", "comma-separated application names to validate (default all)")
	list := fs.Bool("list", false, "list registered property names and exit")
	repro := fs.String("repro", "", "trial seed (decimal or 0x hex) to reproduce: print the graph and re-run the apps on it")
	out := fs.String("o", "", "write the JSON report to this file instead of stdout")
	serverDiff := fs.Int("server-diff", 0, "also run N trials of the server/CLI campaign differential (0 = off; does not affect the JSON report)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range conform.PropertyNames() {
			fmt.Println(n)
		}
		return nil
	}
	if *repro != "" {
		return reproduce(*repro, splitList(*appsFlag))
	}

	rep, err := conform.Run(conform.Options{
		Trials: *trials,
		Seed:   *seed,
		Props:  splitList(*props),
		Apps:   splitList(*appsFlag),
	})
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(blob)
	}

	summarize(os.Stderr, rep)
	if rep.Failures > 0 {
		return fmt.Errorf("%d conformance failure(s)", rep.Failures)
	}
	if *serverDiff > 0 {
		if err := conform.ServerCampaignDifferential(context.Background(), *seed, *serverDiff); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "conform: server/CLI campaign differential: %d trials, all byte-identical\n", *serverDiff)
	}
	return nil
}

func summarize(w *os.File, rep *conform.Report) {
	appFails := 0
	for _, ar := range rep.Apps {
		appFails += len(ar.Failures) + ar.Unreported
	}
	propFails := 0
	for _, pr := range rep.Props {
		if pr.Status != "pass" {
			propFails++
		}
	}
	fmt.Fprintf(w, "conform: seed %d, %d trials: %d apps (%d failing trials), %d properties (%d failing)\n",
		rep.Seed, rep.Trials, len(rep.Apps), appFails, len(rep.Props), propFails)
	for _, ar := range rep.Apps {
		for _, f := range ar.Failures {
			fmt.Fprintf(w, "  FAIL %s seed=%#x family=%s: %s\n", ar.App, f.TrialSeed, f.Family, f.Error)
			fmt.Fprintf(w, "       shrunk to %d nodes / %d undirected edges: %s\n",
				f.ShrunkNodes, f.ShrunkEdges/2, f.ShrunkError)
			fmt.Fprintf(w, "       counterexample edges: %s\n", strings.Join(f.Counterexample, ", "))
			fmt.Fprintf(w, "       reproduce: conform -repro %#x -apps %s\n", f.TrialSeed, ar.App)
		}
	}
	for _, pr := range rep.Props {
		if pr.Status != "pass" {
			fmt.Fprintf(w, "  FAIL property %s: %s\n", pr.Name, pr.Error)
		}
	}
}

// reproduce regenerates the trial graph for a reported seed and re-runs
// the (selected) applications on it, printing the graph so the failure
// can be inspected by hand.
func reproduce(seedStr string, appNames []string) error {
	seed, err := strconv.ParseUint(strings.TrimPrefix(seedStr, "0x"), pickBase(seedStr), 64)
	if err != nil {
		return fmt.Errorf("bad -repro seed %q: %v", seedStr, err)
	}
	g, family := conform.GenGraph(seed)
	fmt.Printf("trial seed %#x: family %s, %d nodes, %d undirected edges\n",
		seed, family, g.NumNodes(), g.NumEdges()/2)
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		ws := g.EdgeWeights(u)
		for i, v := range g.Neighbors(u) {
			if v > u {
				fmt.Printf("  %d-%d w=%d\n", u, v, ws[i])
			}
		}
	}

	sel := apps.All()
	if len(appNames) > 0 {
		sel = sel[:0]
		for _, n := range appNames {
			a, err := apps.ByName(n)
			if err != nil {
				return err
			}
			sel = append(sel, a)
		}
	}
	failures := 0
	for _, a := range sel {
		if err := conform.RunChecked(a, g); err != nil {
			failures++
			fmt.Printf("FAIL %s: %v\n", a.Name, err)
		} else {
			fmt.Printf("ok   %s\n", a.Name)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d application(s) fail on this graph", failures)
	}
	return nil
}

func pickBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
