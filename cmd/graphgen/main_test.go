package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuport/internal/graph"
)

func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range []string{"road", "social", "random"} {
		var buf bytes.Buffer
		args := []string{"-kind", kind, "-seed", "3"}
		switch kind {
		case "road":
			args = append(args, "-side", "20")
		case "social":
			args = append(args, "-scale", "8")
		case "random":
			args = append(args, "-nodes", "500")
		}
		if err := run(args, &buf); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.Contains(buf.String(), "Table VIII") {
			t.Errorf("%s: properties not printed", kind)
		}
	}
}

func TestWriteFormats(t *testing.T) {
	dir := t.TempDir()
	binPath := filepath.Join(dir, "g.bin")
	var buf bytes.Buffer
	if err := run([]string{"-kind", "random", "-nodes", "200", "-degree", "3",
		"-format", "binary", "-out", binPath}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		t.Fatalf("written binary unreadable: %v", err)
	}
	if g.NumNodes() != 200 {
		t.Errorf("nodes = %d", g.NumNodes())
	}

	txtPath := filepath.Join(dir, "g.txt")
	if err := run([]string{"-kind", "road", "-side", "10", "-out", txtPath}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# road road") {
		t.Errorf("edge list header: %q", string(data[:30]))
	}
}

func TestErrors(t *testing.T) {
	badFormatOut := filepath.Join(t.TempDir(), "x")
	for _, args := range [][]string{
		{"-kind", "torus"},
		{"-kind", "road", "-side", "5", "-out", "/nonexistent-dir/x", "-format", "edgelist"},
		{"-kind", "road", "-side", "5", "-out", badFormatOut, "-format", "yaml"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
	// An unknown format must be rejected before the output file is
	// created; leaving an empty stray behind is how cmd/graphgen/x
	// once ended up committed.
	if _, err := os.Stat(badFormatOut); !os.IsNotExist(err) {
		t.Errorf("bad-format run left %s behind (stat err = %v)", badFormatOut, err)
	}
}
