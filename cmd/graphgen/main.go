// Command graphgen generates the study's graph inputs (or custom-sized
// variants) and writes them as edge lists or in the library's binary
// format, printing the structural properties Table VIII reports.
//
// Usage:
//
//	graphgen -kind road   -side 110 -seed 1001 -out usa-ny.txt
//	graphgen -kind social -scale 13 -edgefactor 16 -format binary -out soc.bin
//	graphgen -kind random -nodes 8192 -degree 8
//
// With no -out, only the properties are printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpuport/internal/graph"
	"gpuport/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	kind := fs.String("kind", "road", "road | social | random")
	name := fs.String("name", "", "graph name (defaults per kind)")
	seed := fs.Uint64("seed", 1, "generator seed")
	side := fs.Int("side", graph.RoadGridSide, "road: grid side length")
	scale := fs.Int("scale", graph.SocialScale, "social: log2 node count")
	edgeFactor := fs.Int("edgefactor", graph.SocialEdgeFactor, "social: edges per node")
	nodes := fs.Int("nodes", graph.RandomNodes, "random: node count")
	degree := fs.Int("degree", graph.RandomDegree, "random: out-degree")
	out := fs.String("out", "", "output file (empty: properties only)")
	format := fs.String("format", "edgelist", "edgelist | binary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	switch *kind {
	case "road":
		if *name == "" {
			*name = "road"
		}
		g = graph.GenerateRoad(*name, *side, *seed)
	case "social":
		if *name == "" {
			*name = "social"
		}
		g = graph.GenerateRMAT(*name, *scale, *edgeFactor, *seed)
	case "random":
		if *name == "" {
			*name = "random"
		}
		g = graph.GenerateUniform(*name, *nodes, *degree, *seed)
	default:
		return fmt.Errorf("unknown kind %q (road, social or random)", *kind)
	}
	if err := g.Validate(); err != nil {
		return err
	}

	if err := report.Inputs(w, []graph.Properties{graph.Analyze(g)}); err != nil {
		return err
	}

	if *out == "" {
		return nil
	}
	// Validate the format before creating the file: rejecting it after
	// os.Create would leave an empty stray output behind.
	switch *format {
	case "edgelist", "binary":
	default:
		return fmt.Errorf("unknown format %q (edgelist or binary)", *format)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if *format == "edgelist" {
		err = graph.WriteEdgeList(f, g)
	} else {
		err = graph.WriteBinary(f, g)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%s) to %s\n", g.Name, *format, *out)
	return nil
}
