// Command irglc drives the DSL compiler: it compiles an IrGL-like
// program (a shipped sample or a user file) and either emits the
// OpenCL translation for a chosen optimisation configuration, or
// executes the program on a graph input through the instrumented
// runtime and reports the result.
//
// Usage:
//
//	irglc -program bfs -emit -config sg,fg8,oitergb
//	irglc -program sssp -run -input usa.ny
//	irglc -src my.irgl -emit
//	irglc -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"gpuport/internal/graph"
	"gpuport/internal/irglc"
	"gpuport/internal/opt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "irglc:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("irglc", flag.ContinueOnError)
	progName := fs.String("program", "bfs", "shipped sample to compile (see -list)")
	srcFile := fs.String("src", "", "compile a DSL source file instead of a sample")
	cfgStr := fs.String("config", "baseline", "optimisation configuration for -emit")
	emit := fs.Bool("emit", false, "emit OpenCL for the configuration")
	runIt := fs.Bool("run", false, "execute the program on -input")
	inputName := fs.String("input", "rand-8k", "graph input for -run")
	list := fs.Bool("list", false, "list shipped sample programs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		var names []string
		for name := range irglc.Samples() {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintln(w, n)
		}
		return nil
	}

	var src string
	if *srcFile != "" {
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			return err
		}
		src = string(data)
	} else {
		s, ok := irglc.Samples()[*progName]
		if !ok {
			return fmt.Errorf("unknown sample %q (use -list)", *progName)
		}
		src = s
	}

	exe, err := irglc.Compile(src)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "compiled program %q: %d node arrays, %d kernels\n",
		exe.Program().Name, len(exe.Program().Nodes), len(exe.Program().Kernels))

	if *emit {
		cfg, err := opt.Parse(*cfgStr)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, irglc.GenerateOpenCL(exe.Program(), cfg))
	}

	if *runIt {
		g, err := graph.InputByName(*inputName)
		if err != nil {
			return err
		}
		trace, arrays, err := exe.Run(g)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nran on %s: %d launches, %d host loops, %d edge work\n",
			g.Name, trace.TotalLaunches(), len(trace.Loops), trace.TotalEdgeWork())
		var names []string
		for name := range arrays {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			arr := arrays[name]
			// Print a tiny digest of the result array.
			var minV, maxV int32 = 1<<31 - 1, -(1 << 31)
			reached := 0
			for _, v := range arr {
				if int64(v) != irglc.Infinity {
					reached++
				}
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
			}
			fmt.Fprintf(w, "  %s: %d entries, min %d, max %d, %d below INF\n",
				name, len(arr), minV, maxV, reached)
		}
	}
	return nil
}
