package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestList(t *testing.T) {
	out := runCLI(t, "-list")
	for _, want := range []string{"bfs", "cc", "sssp"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q: %q", want, out)
		}
	}
}

func TestEmit(t *testing.T) {
	out := runCLI(t, "-program", "bfs", "-emit", "-config", "coop-cv,sg,fg8,oitergb")
	for _, want := range []string{
		"compiled program \"bfs\"",
		"__kernel void relax(",
		"coop_push",
		"sub_group_barrier",
		"FG_CHUNK 8",
		"__global_barrier",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("emit missing %q", want)
		}
	}
}

func TestRunSample(t *testing.T) {
	out := runCLI(t, "-program", "sssp", "-run", "-input", "rand-8k")
	if !strings.Contains(out, "ran on rand-8k") || !strings.Contains(out, "dist:") {
		t.Errorf("run output: %q", out)
	}
}

func TestSrcFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.irgl")
	src := `program tiny
node x: int
host { forall u in nodes { x[u] = degree(u) } }
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-src", path, "-run", "-input", "rand-8k")
	if !strings.Contains(out, `compiled program "tiny"`) {
		t.Errorf("output: %q", out)
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-program", "nope"},
		{"-src", "/nonexistent.irgl"},
		{"-program", "bfs", "-emit", "-config", "fg,fg8"},
		{"-program", "bfs", "-run", "-input", "nope"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
