package main

import (
	"strings"
	"testing"
)

const sampleCover = `ok  	gpuport	1.954s	coverage: 71.2% of statements
ok  	gpuport/internal/apps	0.078s	coverage: 94.9% of statements
ok  	gpuport/internal/cost	0.013s	coverage: 97.0% of statements
ok  	gpuport/internal/obs	0.011s	coverage: [no statements]
?   	gpuport/cmd/faultsim	[no test files]
`

func runCover(t *testing.T, input string, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, strings.NewReader(input), &out)
	return out.String(), err
}

func TestParseCoverage(t *testing.T) {
	cov, err := parseCoverage(strings.NewReader(sampleCover))
	if err != nil {
		t.Fatal(err)
	}
	if cov["gpuport/internal/apps"] != 94.9 {
		t.Errorf("apps coverage = %v", cov["gpuport/internal/apps"])
	}
	if cov["gpuport/internal/obs"] != -1 || cov["gpuport/cmd/faultsim"] != -1 {
		t.Errorf("untestable packages should map to -1: %v", cov)
	}
	if _, ok := cov["gpuport/internal/irgl"]; ok {
		t.Error("phantom package parsed")
	}
}

func TestFloorsPassAndFail(t *testing.T) {
	out, err := runCover(t, sampleCover,
		"-floor", "gpuport/internal/apps,90",
		"-floor", "gpuport/internal/cost,92")
	if err != nil {
		t.Fatalf("floors under current coverage must pass: %v\n%s", err, out)
	}
	out, err = runCover(t, sampleCover, "-floor", "gpuport/internal/apps,99")
	if err == nil || !strings.Contains(out, "below floor") {
		t.Fatalf("floor above coverage must fail: err=%v out=%s", err, out)
	}
}

func TestMissingAndUntestablePackagesFail(t *testing.T) {
	out, err := runCover(t, sampleCover, "-floor", "gpuport/internal/irgl,50")
	if err == nil || !strings.Contains(out, "missing from input") {
		t.Fatalf("absent package must fail: err=%v out=%s", err, out)
	}
	out, err = runCover(t, sampleCover, "-floor", "gpuport/cmd/faultsim,10")
	if err == nil || !strings.Contains(out, "no test files") {
		t.Fatalf("no-test-files package must fail: err=%v out=%s", err, out)
	}
}

func TestBadSpecs(t *testing.T) {
	if _, err := runCover(t, sampleCover); err == nil {
		t.Error("no floors at all should be an error, not a vacuous pass")
	}
	for _, spec := range []string{"gpuport/internal/apps", "gpuport/internal/apps,abc", ",50", "p,-3", "p,101"} {
		if _, err := runCover(t, sampleCover, "-floor", spec); err == nil {
			t.Errorf("bad spec %q accepted", spec)
		}
	}
}

func TestMalformedCoverageLine(t *testing.T) {
	_, err := runCover(t, "ok  \tgpuport/internal/apps\t0.1s\tcoverage: garbage\n",
		"-floor", "gpuport/internal/apps,50")
	if err == nil || !strings.Contains(err.Error(), "malformed coverage") {
		t.Fatalf("err = %v, want malformed-coverage error", err)
	}
}
