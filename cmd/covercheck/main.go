// Command covercheck parses `go test -cover` text output and enforces
// per-package statement-coverage floors. It is the gate behind `make
// cover`: the packages that carry the study's correctness burden (the
// application kernels, the cost model, the tracing runtime) must not
// silently shed their tests as the code grows.
//
// Usage:
//
//	covercheck [-in cover.out] [-floor pkg,minpercent]...
//
// Input lines look like
//
//	ok  	gpuport/internal/apps	0.078s	coverage: 94.9% of statements
//	ok  	gpuport/internal/obs	0.011s	coverage: [no statements]
//	?   	gpuport/cmd/faultsim	[no test files]
//
// Only packages named by a -floor flag are enforced; everything else is
// reported for information. A floored package that is missing from the
// input, has no test files, or sits below its floor fails the gate.
// Floors are deliberately a few points below current coverage: the gate
// exists to catch collapses (a deleted test file, a build-tagged-out
// suite), not to ratchet every percent.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type floor struct {
	pkg string
	min float64
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("covercheck", flag.ContinueOnError)
	inPath := fs.String("in", "", "go test -cover output file (default stdin)")
	var floorSpecs multiFlag
	fs.Var(&floorSpecs, "floor", "pkg,minpercent coverage floor (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	floors, err := parseFloors(floorSpecs)
	if err != nil {
		return err
	}

	in := stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	cov, err := parseCoverage(in)
	if err != nil {
		return err
	}

	failed := 0
	for _, fl := range floors {
		pct, ok := cov[fl.pkg]
		switch {
		case !ok:
			fmt.Fprintf(stdout, "FAIL %s: no coverage reported (package missing from input?)\n", fl.pkg)
			failed++
		case pct < 0:
			fmt.Fprintf(stdout, "FAIL %s: no test files\n", fl.pkg)
			failed++
		case pct < fl.min:
			fmt.Fprintf(stdout, "FAIL %s: coverage %.1f%% below floor %.1f%%\n", fl.pkg, pct, fl.min)
			failed++
		default:
			fmt.Fprintf(stdout, "ok   %s: coverage %.1f%% (floor %.1f%%)\n", fl.pkg, pct, fl.min)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d package(s) below their coverage floor", failed)
	}
	return nil
}

func parseFloors(specs []string) ([]floor, error) {
	var out []floor
	for _, s := range specs {
		pkg, pct, ok := strings.Cut(s, ",")
		if !ok || pkg == "" {
			return nil, fmt.Errorf("bad -floor spec %q (want pkg,minpercent)", s)
		}
		min, err := strconv.ParseFloat(pct, 64)
		if err != nil || min < 0 || min > 100 {
			return nil, fmt.Errorf("bad -floor percent in %q", s)
		}
		out = append(out, floor{pkg, min})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no -floor flags given; nothing to enforce")
	}
	return out, nil
}

// parseCoverage extracts per-package coverage from `go test -cover`
// output. Percentages map to their value; packages with no test files
// or no statements map to -1 so floors can distinguish "absent from
// input" from "present but untestable".
func parseCoverage(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		f := strings.Fields(line)
		if len(f) < 2 || (f[0] != "ok" && f[0] != "?" && f[0] != "---") {
			continue
		}
		if f[0] == "---" {
			continue // "--- FAIL: ..." test chatter
		}
		pkg := f[1]
		switch {
		case strings.Contains(line, "[no test files]"):
			out[pkg] = -1
		case strings.Contains(line, "coverage: [no statements]"):
			out[pkg] = -1
		case strings.Contains(line, "coverage:"):
			i := strings.Index(line, "coverage:")
			rest := strings.Fields(line[i+len("coverage:"):])
			if len(rest) == 0 || !strings.HasSuffix(rest[0], "%") {
				return nil, fmt.Errorf("malformed coverage in line %q", line)
			}
			pct, err := strconv.ParseFloat(strings.TrimSuffix(rest[0], "%"), 64)
			if err != nil {
				return nil, fmt.Errorf("malformed coverage in line %q", line)
			}
			out[pkg] = pct
		}
	}
	return out, sc.Err()
}
