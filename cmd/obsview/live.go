package main

// Live-stream consumers: "obsview tail" follows an NDJSON telemetry
// stream (gpuportd /debug/obs-stream) and renders a rolling top-spans
// table; "obsview slo" evaluates latency, queue-wait and cache-hit
// service-level floors against either a stream capture or a Chrome
// trace, optionally emitting the observations in go-bench format so
// benchcheck can record and gate them.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gpuport/internal/obs"
	"gpuport/internal/report"
)

// openInput opens path, with "-" meaning stdin.
func openInput(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// tailState aggregates streamed span closes for the rolling table.
type tailState struct {
	groups   map[[2]string]*spanGroup // (track, name) -> aggregate
	childDur map[string]float64       // span id -> summed child durations
	selfOf   map[string][2]string     // span id -> owning group key
	counters map[string]float64
	spans    int
}

func newTailState() *tailState {
	return &tailState{
		groups:   map[[2]string]*spanGroup{},
		childDur: map[string]float64{},
		selfOf:   map[string][2]string{},
		counters: map[string]float64{},
	}
}

// add folds one stream event in. Self time is maintained incrementally:
// a span's duration joins its group's self time, and a child's duration
// is subtracted from the group that owns the parent span once the
// parent has closed (children close before parents on a live stream,
// so the usual case is handled by recording child durations first).
func (ts *tailState) add(ev obs.StreamEvent) {
	switch ev.Kind {
	case obs.StreamCounter:
		ts.counters[ev.Name] = float64(ev.Total)
	case obs.StreamSpan:
		ts.spans++
		key := [2]string{ev.Track, ev.Name}
		g := ts.groups[key]
		if g == nil {
			g = &spanGroup{name: ev.Name}
			ts.groups[key] = g
		}
		g.count++
		dur := float64(ev.DurNS)
		g.total += dur
		g.self += dur - ts.childDur[ev.Span]
		ts.selfOf[ev.Span] = key
		if ev.Parent != "" {
			if pkey, ok := ts.selfOf[ev.Parent]; ok {
				// Parent already closed (out-of-order delivery): charge
				// its group retroactively.
				ts.groups[pkey].self -= dur
			} else {
				ts.childDur[ev.Parent] += dur
			}
		}
	}
}

// render writes the rolling top table and counters. Accumulated self
// time can go negative when an async child outlives its parent (the
// queue-wait span runs on long after its submit request returned); a
// span cannot spend negative time in its own frames, so self is
// clamped at zero for ranking and display.
func (ts *tailState) render(w io.Writer, top int) {
	type row struct {
		track string
		self  float64
		g     *spanGroup
	}
	rows := make([]row, 0, len(ts.groups))
	for key, g := range ts.groups {
		rows = append(rows, row{key[0], max(g.self, 0), g})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].self != rows[j].self {
			return rows[i].self > rows[j].self
		}
		if rows[i].track != rows[j].track {
			return rows[i].track < rows[j].track
		}
		return rows[i].g.name < rows[j].g.name
	})
	t := report.NewTable(fmt.Sprintf("Live top spans by self time (%d closed)", ts.spans),
		"Track", "Span", "Count", "Total ns", "Self ns").RightAlign(2, 3, 4)
	for i, r := range rows {
		if i >= top {
			t.Row("", fmt.Sprintf("... %d more", len(rows)-top), "", "", "")
			break
		}
		t.Row(r.track, r.g.name, r.g.count, report.F(r.g.total, 0), report.F(r.self, 0))
	}
	t.Render(w)
	if len(ts.counters) > 0 {
		t := report.NewTable("Counters", "Counter", "Value").RightAlign(1)
		for _, name := range sortedKeys(ts.counters) {
			t.Row(name, report.F(ts.counters[name], 0))
		}
		t.Render(w)
	}
	fmt.Fprintln(w)
}

// tail follows an NDJSON stream, re-rendering every `every` span
// events (0 renders only once, at end of stream).
func tail(w io.Writer, path string, top, every int) error {
	in, err := openInput(path)
	if err != nil {
		return err
	}
	defer in.Close()
	st := newTailState()
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lastRender := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev obs.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("%s: bad stream line %q: %w", path, line, err)
		}
		st.add(ev)
		if every > 0 && st.spans-lastRender >= every {
			st.render(w, top)
			lastRender = st.spans
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	st.render(w, top)
	return nil
}

// sloConfig is one SLO evaluation: floors at zero are not checked.
type sloConfig struct {
	endpoint      string
	p50MS, p99MS  float64 // request-latency floors for the endpoint
	queueP99MS    float64 // queue-wait p99 floor
	cacheHitMin   float64 // trace-cache hit ratio floor (0..1)
	injectLatency int64   // test hook: ns added to every latency sample
	benchPath     string  // go-bench-format observations ("" disables)
	reportPath    string  // human report copy ("" disables)
}

// sloObservations is what slo measures from a stream or trace.
type sloObservations struct {
	latencyNS []int64 // per-request latency for the chosen endpoint
	queueNS   []int64 // per-job queue-wait
	hits      float64
	misses    float64
}

// quantileNS returns the q-quantile of the samples (nearest-rank).
func quantileNS(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q * float64(len(s)))
	if float64(rank) < q*float64(len(s)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// loadSLOStream reads observations from an NDJSON stream capture.
func loadSLOStream(path, endpoint string) (*sloObservations, error) {
	in, err := openInput(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	o := &sloObservations{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev obs.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("%s: bad stream line %q: %w", path, line, err)
		}
		switch ev.Kind {
		case obs.StreamSpan:
			switch ev.Name {
			case obs.SpanHTTPRequest:
				if ev.Attrs[obs.AttrEndpoint] == endpoint {
					o.latencyNS = append(o.latencyNS, ev.DurNS)
				}
			case obs.SpanQueueWait:
				o.queueNS = append(o.queueNS, ev.DurNS)
			}
		case obs.StreamCounter:
			switch ev.Name {
			case obs.CtrCacheHits:
				o.hits = float64(ev.Total)
			case obs.CtrCacheMisses:
				o.misses = float64(ev.Total)
			}
		}
	}
	return o, sc.Err()
}

// loadSLOTrace reads the same observations from a raw Chrome trace
// export (/debug/obs-trace): request and queue-wait span durations are
// microseconds there, counters are counter events.
func loadSLOTrace(td *traceData, raw []byte, endpoint string) (*sloObservations, error) {
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	o := &sloObservations{
		hits:   td.counters[obs.CtrCacheHits],
		misses: td.counters[obs.CtrCacheMisses],
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case obs.SpanHTTPRequest:
			if ep, _ := ev.Args[obs.AttrEndpoint].(string); ep == endpoint {
				o.latencyNS = append(o.latencyNS, int64(ev.Dur*1e3))
			}
		case obs.SpanQueueWait:
			o.queueNS = append(o.queueNS, int64(ev.Dur*1e3))
		}
	}
	return o, nil
}

// loadSLO sniffs the input format: a Chrome trace is one JSON object
// with a traceEvents array; anything else is treated as NDJSON.
func loadSLO(path, endpoint string) (*sloObservations, error) {
	if path != "-" {
		if raw, err := os.ReadFile(path); err == nil && isChromeTrace(raw) {
			td, err := loadTrace(path)
			if err != nil {
				return nil, err
			}
			return loadSLOTrace(td, raw, endpoint)
		}
	}
	return loadSLOStream(path, endpoint)
}

func isChromeTrace(raw []byte) bool {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	return json.Unmarshal(raw, &doc) == nil && doc.TraceEvents != nil
}

const nsPerMS = 1e6

// slo evaluates the floors and returns an error listing every breach.
func slo(w io.Writer, path string, cfg sloConfig) error {
	o, err := loadSLO(path, cfg.endpoint)
	if err != nil {
		return err
	}
	for i := range o.latencyNS {
		o.latencyNS[i] += cfg.injectLatency
	}

	p50 := quantileNS(o.latencyNS, 0.50)
	p99 := quantileNS(o.latencyNS, 0.99)
	queueP99 := quantileNS(o.queueNS, 0.99)
	hitRatio := 0.0
	if total := o.hits + o.misses; total > 0 {
		hitRatio = o.hits / total
	}

	var breaches []string
	check := func(name string, observedNS int64, floorMS float64, samples int) {
		if floorMS <= 0 {
			return
		}
		if samples == 0 {
			breaches = append(breaches, fmt.Sprintf("%s: no samples", name))
			return
		}
		if float64(observedNS) > floorMS*nsPerMS {
			breaches = append(breaches, fmt.Sprintf("%s: %.3fms exceeds floor %.3fms",
				name, float64(observedNS)/nsPerMS, floorMS))
		}
	}
	check(cfg.endpoint+" p50", p50, cfg.p50MS, len(o.latencyNS))
	check(cfg.endpoint+" p99", p99, cfg.p99MS, len(o.latencyNS))
	check("queue-wait p99", queueP99, cfg.queueP99MS, len(o.queueNS))
	if cfg.cacheHitMin > 0 {
		if o.hits+o.misses == 0 {
			breaches = append(breaches, "cache-hit ratio: no cache traffic")
		} else if hitRatio < cfg.cacheHitMin {
			breaches = append(breaches, fmt.Sprintf("cache-hit ratio: %.3f below floor %.3f", hitRatio, cfg.cacheHitMin))
		}
	}

	var rep strings.Builder
	t := report.NewTable("SLO evaluation: "+path, "Indicator", "Observed", "Floor", "Samples").RightAlign(1, 2, 3)
	t.Row(cfg.endpoint+" p50", fmt.Sprintf("%.3fms", float64(p50)/nsPerMS), floorCell(cfg.p50MS, "ms"), len(o.latencyNS))
	t.Row(cfg.endpoint+" p99", fmt.Sprintf("%.3fms", float64(p99)/nsPerMS), floorCell(cfg.p99MS, "ms"), len(o.latencyNS))
	t.Row("queue-wait p99", fmt.Sprintf("%.3fms", float64(queueP99)/nsPerMS), floorCell(cfg.queueP99MS, "ms"), len(o.queueNS))
	t.Row("cache-hit ratio", fmt.Sprintf("%.3f", hitRatio), floorCell(cfg.cacheHitMin, " min"), int(o.hits+o.misses))
	t.Render(&rep)
	for _, b := range breaches {
		fmt.Fprintf(&rep, "BREACH %s\n", b)
	}
	if len(breaches) == 0 {
		fmt.Fprintln(&rep, "all SLOs met")
	}
	fmt.Fprint(w, rep.String())
	if cfg.reportPath != "" {
		if err := os.WriteFile(cfg.reportPath, []byte(rep.String()), 0o644); err != nil {
			return err
		}
	}

	if cfg.benchPath != "" {
		if err := writeSLOBench(cfg, p50, p99, queueP99, hitRatio); err != nil {
			return err
		}
	}
	if len(breaches) > 0 {
		return fmt.Errorf("%d SLO breach(es)", len(breaches))
	}
	return nil
}

func floorCell(v float64, unit string) string {
	if v <= 0 {
		return "-"
	}
	if unit == "ms" {
		return fmt.Sprintf("%.3fms", v)
	}
	return fmt.Sprintf("%.3f%s", v, unit)
}

// writeSLOBench records the observations and their floors as go-bench
// lines, the format benchcheck folds and gates. Floors ride along as
// "-floor" twins so a -maxratio gate can assert observed <= floor (or,
// for the hit ratio, floor <= observed) without hardcoding numbers in
// two places. Values are clamped to >= 1: benchcheck rejects zero
// ns/op, and the ratio-style metrics are scaled by 1e6 to survive the
// integer format. Names avoid trailing "-<digits>" (benchcheck strips
// those as GOMAXPROCS suffixes).
func writeSLOBench(cfg sloConfig, p50, p99, queueP99 int64, hitRatio float64) error {
	clamp := func(v int64) int64 {
		if v < 1 {
			return 1
		}
		return v
	}
	var b strings.Builder
	line := func(name string, v int64) {
		fmt.Fprintf(&b, "BenchmarkSLO/%s 1 %d ns/op\n", name, clamp(v))
	}
	line(cfg.endpoint+"-latency-p50", p50)
	line(cfg.endpoint+"-latency-p50-floor", int64(cfg.p50MS*nsPerMS))
	line(cfg.endpoint+"-latency-p99", p99)
	line(cfg.endpoint+"-latency-p99-floor", int64(cfg.p99MS*nsPerMS))
	line("queue-wait-p99", queueP99)
	line("queue-wait-p99-floor", int64(cfg.queueP99MS*nsPerMS))
	line("cache-hit-permicro", int64(hitRatio*1e6))
	line("cache-hit-permicro-floor", int64(cfg.cacheHitMin*1e6))
	return os.WriteFile(cfg.benchPath, []byte(b.String()), 0o644)
}
