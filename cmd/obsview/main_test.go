package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpuport/internal/obs"
)

// writeTrace exports a recorder snapshot as a Chrome trace file and
// returns its path.
func writeTrace(t *testing.T, rec *obs.Recorder, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// sampleRecorder builds a recorder with nested real spans, a sim
// timeline, counters, and an instant event. The child span sits inside
// the stage span so summary must attribute its duration to the child's
// self time, not the parent's.
func sampleRecorder(extraRetries int64) *obs.Recorder {
	clock := time.Unix(0, 0)
	rec := obs.NewWithClock(func() time.Time {
		clock = clock.Add(time.Microsecond)
		return clock
	}).EnableSim()
	done := rec.Start(obs.StageSweep)
	phase := rec.StartSpan(obs.StageSweep, 0)
	job := phase.StartSpan(obs.SpanSweepJob, 0, obs.String(obs.AttrApp, "bfs-wl"))
	job.Event(obs.EvRetry, obs.Int(obs.AttrAttempt, 1))
	job.End()
	phase.End()
	done()
	rec.Add(obs.CtrFaultRetries, 1+extraRetries)
	rec.Add(obs.CtrCacheHits, 2)
	rec.SimSpan(0, 0, obs.SpanSimTimeline, 0, 500,
		obs.String(obs.AttrApp, "bfs-wl"))
	return rec
}

func TestSummary(t *testing.T) {
	path := writeTrace(t, sampleRecorder(0), "trace.json")
	var out bytes.Buffer
	if err := run([]string{"summary", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Top spans by self time",
		obs.StageSweep, obs.SpanSweepJob, obs.SpanSimTimeline,
		obs.CtrFaultRetries, obs.CtrCacheHits,
		obs.EvRetry,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary output missing %q:\n%s", want, got)
		}
	}
}

// TestSummarySelfTime checks that a parent span's self time excludes
// its child's duration. With the stepping clock every Start/now call
// advances 1µs, so the sweep stage span strictly contains the job
// span; the job's duration must be subtracted from the stage's self.
func TestSummarySelfTime(t *testing.T) {
	td, err := loadTrace(writeTrace(t, sampleRecorder(0), "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stage, job *spanGroup
	for _, g := range td.groups {
		switch g.name {
		case obs.StageSweep:
			stage = g
		case obs.SpanSweepJob:
			job = g
		}
	}
	if stage == nil || job == nil {
		t.Fatalf("missing span groups: stage=%v job=%v", stage, job)
	}
	if stage.self >= stage.total {
		t.Errorf("stage self (%v) not reduced below total (%v) by child", stage.self, stage.total)
	}
	if got, want := stage.self, stage.total-job.total; got != want {
		t.Errorf("stage self = %v, want total-child = %v", got, want)
	}
}

func TestDiff(t *testing.T) {
	old := writeTrace(t, sampleRecorder(0), "old.json")
	niu := writeTrace(t, sampleRecorder(5), "new.json")
	var out bytes.Buffer
	if err := run([]string{"diff", old, niu}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Counter deltas", obs.CtrFaultRetries, "+5",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, obs.CtrCacheHits) {
		t.Errorf("unchanged counter %s rendered in diff:\n%s", obs.CtrCacheHits, got)
	}

	// Identical files: no deltas at all.
	out.Reset()
	if err := run([]string{"diff", old, old}, &out); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	if !strings.Contains(got, "no counter differences") {
		t.Errorf("self-diff missing no-difference marker:\n%s", got)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},
		{"summary"},
		{"diff", "one.json"},
		{"bogus", "x"},
		{"summary", filepath.Join(t.TempDir(), "missing.json")},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	// Not-a-trace input.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"summary", bad}, &out); err == nil {
		t.Error("summary of malformed file succeeded, want error")
	}
}
