package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuport/internal/obs"
)

// writeStream writes StreamEvents as an NDJSON file and returns its
// path.
func writeStream(t *testing.T, name string, events ...obs.StreamEvent) string {
	t.Helper()
	var buf []byte
	for _, ev := range events {
		buf = ev.AppendNDJSON(buf)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// reqEvent is a closed http-request span for the submit endpoint.
func reqEvent(span string, durNS int64) obs.StreamEvent {
	return obs.StreamEvent{
		Kind: obs.StreamSpan, Track: "real", Name: obs.SpanHTTPRequest,
		Trace: "t1", Span: span, DurNS: durNS,
		Attrs: map[string]string{obs.AttrEndpoint: "submit"},
	}
}

// sampleStream is a tiny but representative capture: two requests (one
// with a child validate span), a queue wait, and cache counters.
func sampleStream(t *testing.T) string {
	t.Helper()
	return writeStream(t, "stream.ndjson",
		obs.StreamEvent{Kind: obs.StreamSpan, Track: "real", Name: obs.SpanValidate,
			Trace: "t1", Span: "v1", Parent: "r1", DurNS: 400},
		reqEvent("r1", 1_000_000),
		reqEvent("r2", 3_000_000),
		obs.StreamEvent{Kind: obs.StreamSpan, Track: "real", Name: obs.SpanQueueWait,
			Trace: "t1", Span: "q1", Parent: "r1", DurNS: 2_000_000},
		obs.StreamEvent{Kind: obs.StreamCounter, Name: obs.CtrCacheHits, Delta: 3, Total: 3},
		obs.StreamEvent{Kind: obs.StreamCounter, Name: obs.CtrCacheMisses, Delta: 1, Total: 1},
	)
}

func TestTail(t *testing.T) {
	path := sampleStream(t)
	var out bytes.Buffer
	if err := run([]string{"tail", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Live top spans by self time (4 closed)",
		obs.SpanHTTPRequest, obs.SpanQueueWait, obs.SpanValidate,
		obs.CtrCacheHits, obs.CtrCacheMisses,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("tail output missing %q:\n%s", want, got)
		}
	}
}

// TestTailSelfTime checks incremental self-time accounting in both
// delivery orders: child closing before the parent (the live-stream
// norm) and after it (out-of-order delivery).
func TestTailSelfTime(t *testing.T) {
	parent := obs.StreamEvent{Kind: obs.StreamSpan, Track: "real",
		Name: "parent", Span: "p1", DurNS: 1000}
	child := obs.StreamEvent{Kind: obs.StreamSpan, Track: "real",
		Name: "child", Span: "c1", Parent: "p1", DurNS: 300}
	for name, order := range map[string][]obs.StreamEvent{
		"child-first":  {child, parent},
		"parent-first": {parent, child},
	} {
		st := newTailState()
		for _, ev := range order {
			st.add(ev)
		}
		g := st.groups[[2]string{"real", "parent"}]
		if g == nil || g.self != 700 {
			t.Errorf("%s: parent self = %+v, want 700", name, g)
		}
	}
}

// TestTailNegativeSelfClamped: an async child that outlives its parent
// (queue-wait vs its submit request) drives the parent's accumulated
// self time negative; the rendered table must clamp it at zero.
func TestTailNegativeSelfClamped(t *testing.T) {
	path := writeStream(t, "async.ndjson",
		reqEvent("r1", 250_000),
		obs.StreamEvent{Kind: obs.StreamSpan, Track: "real", Name: obs.SpanQueueWait,
			Trace: "t1", Span: "q1", Parent: "r1", DurNS: 1_750_000},
	)
	var out bytes.Buffer
	if err := run([]string{"tail", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "-1") {
		t.Errorf("tail rendered a negative self time:\n%s", out.String())
	}
	// queue-wait (all self) must outrank the fully-childed request.
	lines := out.String()
	if strings.Index(lines, obs.SpanQueueWait) > strings.Index(lines, obs.SpanHTTPRequest) {
		t.Errorf("queue-wait should rank above http-request:\n%s", lines)
	}
}

func TestTailEvery(t *testing.T) {
	path := sampleStream(t)
	var out bytes.Buffer
	if err := run([]string{"tail", "-every", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	// 4 spans with -every 2: renders at 2, 4, plus the final render.
	if got := strings.Count(out.String(), "Live top spans"); got != 3 {
		t.Errorf("tail -every 2 rendered %d times, want 3:\n%s", got, out.String())
	}
}

func TestTailTopTruncation(t *testing.T) {
	events := make([]obs.StreamEvent, 0, 8)
	for i := 0; i < 8; i++ {
		events = append(events, obs.StreamEvent{Kind: obs.StreamSpan, Track: "real",
			Name: fmt.Sprintf("span-%d", i), Span: fmt.Sprintf("s%d", i), DurNS: int64(100 + i)})
	}
	path := writeStream(t, "many.ndjson", events...)
	var out bytes.Buffer
	if err := run([]string{"-top", "3", "tail", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "... 5 more") {
		t.Errorf("tail -top 3 missing truncation marker:\n%s", out.String())
	}
}

func TestSLOPass(t *testing.T) {
	path := sampleStream(t)
	var out bytes.Buffer
	err := run([]string{"slo", "-p50-ms", "5", "-p99-ms", "10",
		"-queue-p99-ms", "50", "-cache-hit-min", "0.5", path}, &out)
	if err != nil {
		t.Fatalf("slo failed on healthy stream: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"all SLOs met",
		"submit p50", "1.000ms", // lower of the two request samples
		"submit p99", "3.000ms",
		"queue-wait p99", "2.000ms",
		"cache-hit ratio", "0.750",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("slo output missing %q:\n%s", want, got)
		}
	}
}

func TestSLOBreach(t *testing.T) {
	path := sampleStream(t)
	cases := map[string][]string{
		"p50":   {"-p50-ms", "0.5"},
		"p99":   {"-p99-ms", "2"},
		"queue": {"-queue-p99-ms", "1"},
		"cache": {"-cache-hit-min", "0.9"},
	}
	for name, flags := range cases {
		var out bytes.Buffer
		err := run(append(append([]string{"slo"}, flags...), path), &out)
		if err == nil {
			t.Errorf("%s: slo passed, want breach:\n%s", name, out.String())
		}
		if !strings.Contains(out.String(), "BREACH") {
			t.Errorf("%s: output missing BREACH line:\n%s", name, out.String())
		}
	}
}

// TestSLOInjectedRegression is the CI negative check in miniature: a
// stream that passes its floors must fail them once synthetic latency
// is injected.
func TestSLOInjectedRegression(t *testing.T) {
	path := sampleStream(t)
	var out bytes.Buffer
	if err := run([]string{"slo", "-p99-ms", "10", path}, &out); err != nil {
		t.Fatalf("baseline slo failed: %v", err)
	}
	out.Reset()
	err := run([]string{"slo", "-p99-ms", "10", "-inject-latency-ns", "20000000", path}, &out)
	if err == nil {
		t.Fatalf("slo with +20ms injected latency passed, want breach:\n%s", out.String())
	}
}

func TestSLOEmptyStreamBreaches(t *testing.T) {
	path := writeStream(t, "empty.ndjson")
	var out bytes.Buffer
	if err := run([]string{"slo", "-p50-ms", "5", path}, &out); err == nil {
		t.Fatalf("slo on empty stream passed, want no-samples breach:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no samples") {
		t.Errorf("missing no-samples breach:\n%s", out.String())
	}
}

func TestSLOBenchAndReportFiles(t *testing.T) {
	path := sampleStream(t)
	dir := t.TempDir()
	bench := filepath.Join(dir, "slo-bench.out")
	rep := filepath.Join(dir, "slo-report.txt")
	var out bytes.Buffer
	err := run([]string{"slo", "-p50-ms", "5", "-p99-ms", "10",
		"-queue-p99-ms", "50", "-cache-hit-min", "0.5",
		"-bench", bench, "-report", rep, path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BenchmarkSLO/submit-latency-p50 1 1000000 ns/op",
		"BenchmarkSLO/submit-latency-p50-floor 1 5000000 ns/op",
		"BenchmarkSLO/submit-latency-p99 1 3000000 ns/op",
		"BenchmarkSLO/queue-wait-p99 1 2000000 ns/op",
		"BenchmarkSLO/cache-hit-permicro 1 750000 ns/op",
		"BenchmarkSLO/cache-hit-permicro-floor 1 500000 ns/op",
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("bench file missing %q:\n%s", want, b)
		}
	}
	r, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(r) != out.String() {
		t.Errorf("report file differs from stdout:\nfile:\n%s\nstdout:\n%s", r, out.String())
	}
}

// TestSLOFromChromeTrace proves the slo loader accepts the
// /debug/obs-trace export too, reading durations in microseconds and
// counters from counter events.
func TestSLOFromChromeTrace(t *testing.T) {
	rec := obs.New().EnableTracing()
	req := rec.StartSpan(obs.SpanHTTPRequest, 0, obs.String(obs.AttrEndpoint, "submit"))
	wait := req.StartSpan(obs.SpanQueueWait, 0)
	wait.End()
	req.End()
	rec.Add(obs.CtrCacheHits, 4)
	rec.Add(obs.CtrCacheMisses, 1)
	path := writeTrace(t, rec, "trace.json")

	var out bytes.Buffer
	err := run([]string{"slo", "-p50-ms", "1000", "-queue-p99-ms", "1000",
		"-cache-hit-min", "0.5", path}, &out)
	if err != nil {
		t.Fatalf("slo on Chrome trace failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cache-hit ratio") || !strings.Contains(out.String(), "0.800") {
		t.Errorf("trace-based slo missing cache-hit ratio 0.800:\n%s", out.String())
	}
}

func TestLiveRunErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"tail"},
		{"tail", "a", "b"},
		{"slo"},
		{"slo", filepath.Join(t.TempDir(), "missing.ndjson")},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.ndjson")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"tail", bad}, &out); err == nil {
		t.Error("tail of malformed stream succeeded, want error")
	}
	if err := run([]string{"slo", bad}, &out); err == nil {
		t.Error("slo of malformed stream succeeded, want error")
	}
}

func TestQuantileNS(t *testing.T) {
	s := []int64{30, 10, 20, 40}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 20}, {0.99, 40}, {1.0, 40}, {0.25, 10}} {
		if got := quantileNS(s, tc.q); got != tc.want {
			t.Errorf("quantileNS(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := quantileNS(nil, 0.5); got != 0 {
		t.Errorf("quantileNS(nil) = %d, want 0", got)
	}
}
