// Command obsview summarises, compares and gates the telemetry
// gpuport and gpuportd export. It answers the questions a trace viewer
// is too heavyweight for in a terminal workflow: "where did this run
// spend its time", "what changed between these two runs", "what is the
// daemon doing right now", and "did this run meet its latency floors".
//
// Usage:
//
//	obsview summary trace.json        top spans by self time, per track,
//	                                  plus the run's counters
//	obsview diff old.json new.json    per-span self-time and count
//	                                  deltas, plus counter deltas
//	obsview tail stream.ndjson        follow a /debug/obs-stream capture
//	                                  ("-" for stdin), rolling top table
//	obsview slo stream.ndjson         evaluate SLO floors against a
//	                                  stream capture or a Chrome trace;
//	                                  nonzero exit on any breach
//
// Flags (before the subcommand):
//
//	-top N    rows per table (default 15)
//
// tail flags (after the subcommand): -every N re-renders the table
// every N closed spans (0 = once, at end of stream).
//
// slo flags (after the subcommand): -endpoint, -p50-ms, -p99-ms,
// -queue-p99-ms, -cache-hit-min set the floors (zero disables a
// check); -bench and -report write go-bench observations and the
// human report to files; -inject-latency-ns adds synthetic latency to
// every request sample, the hook CI uses to prove the gate fails on
// regressions.
//
// Self time is a span's duration minus the duration of its children
// (linked through the id/parent span attributes the exporter writes),
// so a long phase span does not drown out the work inside it. Real-
// track times are wall-clock microseconds; simulated-track times are
// virtual units derived from the traces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"gpuport/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsview:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("obsview", flag.ContinueOnError)
	top := fs.Int("top", 15, "rows per table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: obsview [-top N] summary <trace.json> | diff <old.json> <new.json> | tail <stream.ndjson> | slo <stream.ndjson|trace.json>")
	}
	switch rest[0] {
	case "summary":
		if len(rest) != 2 {
			return fmt.Errorf("usage: obsview summary <trace.json>")
		}
		td, err := loadTrace(rest[1])
		if err != nil {
			return err
		}
		return td.summary(w, *top)
	case "diff":
		if len(rest) != 3 {
			return fmt.Errorf("usage: obsview diff <old.json> <new.json>")
		}
		a, err := loadTrace(rest[1])
		if err != nil {
			return err
		}
		b, err := loadTrace(rest[2])
		if err != nil {
			return err
		}
		return diff(w, a, b, *top)
	case "tail":
		tfs := flag.NewFlagSet("obsview tail", flag.ContinueOnError)
		every := tfs.Int("every", 0, "re-render every N closed spans (0 = only at end of stream)")
		if err := tfs.Parse(rest[1:]); err != nil {
			return err
		}
		if tfs.NArg() != 1 {
			return fmt.Errorf("usage: obsview tail [-every N] <stream.ndjson | ->")
		}
		return tail(w, tfs.Arg(0), *top, *every)
	case "slo":
		sfs := flag.NewFlagSet("obsview slo", flag.ContinueOnError)
		cfg := sloConfig{}
		sfs.StringVar(&cfg.endpoint, "endpoint", "submit", "endpoint whose request latency is evaluated")
		sfs.Float64Var(&cfg.p50MS, "p50-ms", 0, "p50 request-latency floor in ms (0 disables)")
		sfs.Float64Var(&cfg.p99MS, "p99-ms", 0, "p99 request-latency floor in ms (0 disables)")
		sfs.Float64Var(&cfg.queueP99MS, "queue-p99-ms", 0, "p99 queue-wait floor in ms (0 disables)")
		sfs.Float64Var(&cfg.cacheHitMin, "cache-hit-min", 0, "minimum trace-cache hit ratio 0..1 (0 disables)")
		sfs.Int64Var(&cfg.injectLatency, "inject-latency-ns", 0, "test hook: ns added to every request-latency sample")
		sfs.StringVar(&cfg.benchPath, "bench", "", "write observations as go-bench lines to this file")
		sfs.StringVar(&cfg.reportPath, "report", "", "write the evaluation report to this file too")
		if err := sfs.Parse(rest[1:]); err != nil {
			return err
		}
		if sfs.NArg() != 1 {
			return fmt.Errorf("usage: obsview slo [flags] <stream.ndjson | trace.json | ->")
		}
		return slo(w, sfs.Arg(0), cfg)
	default:
		return fmt.Errorf("unknown command %q (summary, diff, tail or slo)", rest[0])
	}
}

// traceEvent is the subset of a Chrome trace-event entry obsview reads.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

// spanGroup aggregates every span sharing (pid, name).
type spanGroup struct {
	pid         int
	name        string
	count       int
	total, self float64
}

// traceData is one loaded trace file, aggregated.
type traceData struct {
	path     string
	procs    map[int]string // pid -> process_name metadata
	groups   map[[2]string]*spanGroup
	counters map[string]float64
	events   map[string]int // instant-event name -> count
}

func loadTrace(path string) (*traceData, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: not a Chrome trace: %w", path, err)
	}
	td := &traceData{
		path:     path,
		procs:    map[int]string{},
		groups:   map[[2]string]*spanGroup{},
		counters: map[string]float64{},
		events:   map[string]int{},
	}
	// First pass: per-parent child durations, for self time.
	childDur := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if parent, ok := ev.Args["parent"].(string); ok {
			childDur[parent] += ev.Dur
		}
	}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				if name, ok := ev.Args["name"].(string); ok {
					td.procs[ev.Pid] = name
				}
			}
		case "C":
			if v, ok := ev.Args["value"].(float64); ok {
				td.counters[ev.Name] = v
			}
		case "i":
			td.events[ev.Name]++
		case "X":
			key := [2]string{fmt.Sprint(ev.Pid), ev.Name}
			g := td.groups[key]
			if g == nil {
				g = &spanGroup{pid: ev.Pid, name: ev.Name}
				td.groups[key] = g
			}
			g.count++
			g.total += ev.Dur
			self := ev.Dur
			if id, ok := ev.Args["id"].(string); ok {
				self -= childDur[id]
			}
			if self < 0 {
				self = 0 // overlapping children (nested loops) can exceed the parent
			}
			g.self += self
		}
	}
	return td, nil
}

// track returns the display name of a pid's track.
func (td *traceData) track(pid int) string {
	if name := td.procs[pid]; name != "" {
		return name
	}
	return fmt.Sprintf("pid %d", pid)
}

// byTrack returns the trace's span groups per pid, each sorted by self
// time descending.
func (td *traceData) byTrack() map[int][]*spanGroup {
	out := map[int][]*spanGroup{}
	for _, g := range td.groups {
		out[g.pid] = append(out[g.pid], g)
	}
	for _, gs := range out {
		sort.Slice(gs, func(i, j int) bool {
			if gs[i].self != gs[j].self {
				return gs[i].self > gs[j].self
			}
			return gs[i].name < gs[j].name
		})
	}
	return out
}

func sortedPids(m map[int][]*spanGroup) []int {
	pids := make([]int, 0, len(m))
	for pid := range m {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	return pids
}

func (td *traceData) summary(w io.Writer, top int) error {
	tracks := td.byTrack()
	for _, pid := range sortedPids(tracks) {
		t := report.NewTable(fmt.Sprintf("Top spans by self time: %s", td.track(pid)),
			"Span", "Count", "Total", "Self").RightAlign(1, 2, 3)
		for i, g := range tracks[pid] {
			if i >= top {
				t.Row(fmt.Sprintf("... %d more", len(tracks[pid])-top), "", "", "")
				break
			}
			t.Row(g.name, g.count, report.F(g.total, 0), report.F(g.self, 0))
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
	if len(td.counters) > 0 {
		t := report.NewTable("Counters", "Counter", "Value").RightAlign(1)
		for _, name := range sortedKeys(td.counters) {
			t.Row(name, report.F(td.counters[name], 0))
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
	if len(td.events) > 0 {
		t := report.NewTable("Events", "Event", "Count").RightAlign(1)
		names := make([]string, 0, len(td.events))
		for name := range td.events {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			t.Row(name, td.events[name])
		}
		t.Render(w)
	}
	return nil
}

func diff(w io.Writer, a, b *traceData, top int) error {
	fmt.Fprintf(w, "diff: %s -> %s\n\n", a.path, b.path)
	type delta struct {
		pid        int
		name       string
		dCount     int
		dSelf      float64
		oldS, newS float64
	}
	keys := map[[2]string]bool{}
	for k := range a.groups {
		keys[k] = true
	}
	for k := range b.groups {
		keys[k] = true
	}
	perPid := map[int][]delta{}
	for k := range keys {
		ga, gb := a.groups[k], b.groups[k]
		d := delta{}
		if ga != nil {
			d.pid, d.name = ga.pid, ga.name
			d.dCount -= ga.count
			d.dSelf -= ga.self
			d.oldS = ga.self
		}
		if gb != nil {
			d.pid, d.name = gb.pid, gb.name
			d.dCount += gb.count
			d.dSelf += gb.self
			d.newS = gb.self
		}
		perPid[d.pid] = append(perPid[d.pid], d)
	}
	pids := make([]int, 0, len(perPid))
	for pid := range perPid {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		ds := perPid[pid]
		sort.Slice(ds, func(i, j int) bool {
			if math.Abs(ds[i].dSelf) != math.Abs(ds[j].dSelf) {
				return math.Abs(ds[i].dSelf) > math.Abs(ds[j].dSelf)
			}
			return ds[i].name < ds[j].name
		})
		t := report.NewTable(fmt.Sprintf("Self-time deltas: %s", b.track(pid)),
			"Span", "Count Δ", "Self (old)", "Self (new)", "Self Δ").RightAlign(1, 2, 3, 4)
		rows := 0
		for _, d := range ds {
			if d.dCount == 0 && d.dSelf == 0 {
				continue
			}
			if rows >= top {
				t.Row("...", "", "", "", "")
				break
			}
			t.Row(d.name, signed(d.dCount), report.F(d.oldS, 0), report.F(d.newS, 0), signedF(d.dSelf))
			rows++
		}
		if rows == 0 {
			t.Row("(no span differences)", "", "", "", "")
		}
		t.Render(w)
		fmt.Fprintln(w)
	}

	names := map[string]bool{}
	for n := range a.counters {
		names[n] = true
	}
	for n := range b.counters {
		names[n] = true
	}
	t := report.NewTable("Counter deltas", "Counter", "Old", "New", "Δ").RightAlign(1, 2, 3)
	rows := 0
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		if a.counters[n] == b.counters[n] {
			continue
		}
		t.Row(n, report.F(a.counters[n], 0), report.F(b.counters[n], 0), signedF(b.counters[n]-a.counters[n]))
		rows++
	}
	if rows == 0 {
		t.Row("(no counter differences)", "", "", "")
	}
	t.Render(w)
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func signed(n int) string {
	if n > 0 {
		return fmt.Sprintf("+%d", n)
	}
	return fmt.Sprint(n)
}

func signedF(v float64) string {
	if v > 0 {
		return "+" + report.F(v, 0)
	}
	return report.F(v, 0)
}
