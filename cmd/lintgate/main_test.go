package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestCleanTreePasses(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/analysis/a.go": "package analysis\n\nfunc F() int { return 1 }\n",
		"internal/obs/clock.go":  "package obs\n\nimport \"time\"\n\nfunc Now() time.Time { return time.Now() }\n",
		"cmd/tool/main.go":       "package main\n\nimport \"time\"\n\nfunc main() { _ = time.Now() }\n",
		"internal/stats/rng.go":  "package stats\n\nimport \"math/rand\"\n\nvar _ = rand.Int\n",
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean tree flagged: %v", vs)
	}
}

func TestUnformattedFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a.go": "package a\n\nfunc  F()  int { return 1 }\n",
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0], "not gofmt-clean") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestTimeNowConfinement(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/measure/m.go": "package measure\n\nimport \"time\"\n\nfunc F() time.Time { return time.Now() }\n",
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0], "time.Now outside") {
		t.Fatalf("violations = %v", vs)
	}

	// The same call in a test file is fine.
	root = writeTree(t, map[string]string{
		"internal/measure/m_test.go": "package measure\n\nimport \"time\"\n\nvar T = time.Now()\n",
	})
	if vs, _ := lint(root); len(vs) != 0 {
		t.Fatalf("test file flagged: %v", vs)
	}

	// Aliased imports don't evade the rule.
	root = writeTree(t, map[string]string{
		"internal/measure/m.go": "package measure\n\nimport clock \"time\"\n\nvar T = clock.Now()\n",
	})
	vs, _ = lint(root)
	if len(vs) != 1 || !strings.Contains(vs[0], "time.Now outside") {
		t.Fatalf("aliased violations = %v", vs)
	}

	// Uses of time that never read the clock are fine anywhere.
	root = writeTree(t, map[string]string{
		"internal/measure/m.go": "package measure\n\nimport \"time\"\n\nconst D = 5 * time.Second\n",
	})
	if vs, _ := lint(root); len(vs) != 0 {
		t.Fatalf("time constant flagged: %v", vs)
	}
}

func TestMathRandConfinement(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/apps/a.go": "package apps\n\nimport \"math/rand\"\n\nvar _ = rand.Int\n",
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0], "math/rand is forbidden") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestUnsafeForbidden(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/x/a.go": "package x\n\nimport \"unsafe\"\n\nvar S = unsafe.Sizeof(0)\n",
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0], "unsafe") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestRepoIsClean(t *testing.T) {
	// The gate must hold on the repository that ships it.
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("repository violates its own lint gate:\n%s", strings.Join(vs, "\n"))
	}
}

func TestObsNameLiterals(t *testing.T) {
	const imp = "package m\n\nimport \"gpuport/internal/obs\"\n\n"
	// A literal name at every flagged position.
	root := writeTree(t, map[string]string{
		"internal/m/a.go": imp + "func F(r *obs.Recorder) {\n" +
			"\tr.Add(\"ad-hoc-counter\", 1)\n" +
			"\tsp := r.StartSpan(\"ad-hoc-span\", 0, obs.String(\"ad-hoc-attr\", \"x\"))\n" +
			"\tr.SimSpan(0, 0, \"ad-hoc-sim\", 0, 1)\n" +
			"\tsp.End()\n" +
			"}\n",
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Fatalf("violations = %v, want 4", vs)
	}
	for _, v := range vs {
		if !strings.Contains(v, "string literal passed as an obs name") {
			t.Errorf("unexpected violation text: %s", v)
		}
	}

	// Constants from the obs package are the sanctioned spelling.
	root = writeTree(t, map[string]string{
		"internal/m/a.go": imp + "func F(r *obs.Recorder) {\n" +
			"\tr.Add(obs.CtrCacheHits, 1)\n" +
			"\tr.StartSpan(obs.StageSweep, 0, obs.Int(obs.AttrAttempt, 1)).End()\n" +
			"}\n",
	})
	if vs, _ := lint(root); len(vs) != 0 {
		t.Fatalf("constant names flagged: %v", vs)
	}

	// Dynamic names (kernel names from traces) are allowed - the rule
	// only bans literals.
	root = writeTree(t, map[string]string{
		"internal/m/a.go": imp + "func F(r *obs.Recorder, name string) {\n" +
			"\tr.SimSpan(0, 0, name, 0, 1)\n" +
			"}\n",
	})
	if vs, _ := lint(root); len(vs) != 0 {
		t.Fatalf("dynamic name flagged: %v", vs)
	}

	// Tests and internal/obs itself are exempt; files that don't
	// import obs are never scanned even if method names collide.
	root = writeTree(t, map[string]string{
		"internal/m/a_test.go": imp + "func F(r *obs.Recorder) { r.Add(\"scratch\", 1) }\n",
		"internal/obs/x.go":    "package obs\n\nfunc (r *Recorder) warm() { r.Add(\"internal\", 1) }\n",
		"internal/q/b.go":      "package q\n\ntype S struct{}\n\nfunc (S) Add(n string, v int) {}\n\nfunc G() { (S{}).Add(\"not-obs\", 1) }\n",
	})
	if vs, _ := lint(root); len(vs) != 0 {
		t.Fatalf("exempt files flagged: %v", vs)
	}

	// Aliasing the import doesn't evade the rule.
	root = writeTree(t, map[string]string{
		"internal/m/a.go": "package m\n\nimport o \"gpuport/internal/obs\"\n\n" +
			"func F(r *o.Recorder) { r.Add(\"ad-hoc\", 1) }\n",
	})
	vs, _ = lint(root)
	if len(vs) != 1 || !strings.Contains(vs[0], "Add") {
		t.Fatalf("aliased violations = %v", vs)
	}
}
