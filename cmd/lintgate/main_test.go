package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestCleanTreePasses(t *testing.T) {
	// time.Now and math/rand are the typed staticgate's concern now;
	// lintgate must not flag them anywhere.
	root := writeTree(t, map[string]string{
		"internal/analysis/a.go": "package analysis\n\nfunc F() int { return 1 }\n",
		"internal/measure/m.go":  "package measure\n\nimport \"time\"\n\nfunc F() time.Time { return time.Now() }\n",
		"internal/apps/a.go":     "package apps\n\nimport \"math/rand\"\n\nvar _ = rand.Int\n",
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean tree flagged: %v", vs)
	}
}

func TestUnformattedFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a.go": "package a\n\nfunc  F()  int { return 1 }\n",
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0], "not gofmt-clean") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestUnsafeForbidden(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/x/a.go": "package x\n\nimport \"unsafe\"\n\nvar S = unsafe.Sizeof(0)\n",
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0], "unsafe") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestStrayFileUnderCmd(t *testing.T) {
	root := writeTree(t, map[string]string{
		"cmd/tool/main.go":  "package main\n\nfunc main() {}\n",
		"cmd/tool/x":        "",
		"cmd/tool/NOTES.md": "fine: has an extension\n",
		"scripts/helper":    "#!/bin/sh\n", // extensionless outside cmd/ is fine
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0], "cmd/tool/x") || !strings.Contains(vs[0], "extensionless") {
		t.Fatalf("violations = %v, want exactly the stray cmd/tool/x", vs)
	}
}

func TestRepoIsClean(t *testing.T) {
	// The gate must hold on the repository that ships it.
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("repository violates its own lint gate:\n%s", strings.Join(vs, "\n"))
	}
}
