package main

import (
	"strings"
	"testing"
)

// Tests for the t.Skip issue-reference rule. The fixtures below are
// whole files so gofmt-cleanliness doesn't interfere with the rule
// under test.
func TestSkipRequiresReference(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the expected violation, "" = clean
	}{
		{
			name: "bare skip flagged",
			src: "package x\n\nimport \"testing\"\n\nfunc TestA(t *testing.T) {\n" +
				"\tt.Skip(\"flaky on slow machines\")\n}\n",
			want: "Skip without a linked issue reference",
		},
		{
			name: "skip with issue number passes",
			src: "package x\n\nimport \"testing\"\n\nfunc TestA(t *testing.T) {\n" +
				"\tt.Skip(\"flaky on slow machines; see #42\")\n}\n",
		},
		{
			name: "skip with URL passes",
			src: "package x\n\nimport \"testing\"\n\nfunc TestA(t *testing.T) {\n" +
				"\tt.Skip(\"tracked at https://example.com/issues/9\")\n}\n",
		},
		{
			name: "skipf with reference in format string passes",
			src: "package x\n\nimport \"testing\"\n\nfunc TestA(t *testing.T) {\n" +
				"\tt.Skipf(\"missing fixture %s (#7)\", \"x\")\n}\n",
		},
		{
			name: "skipf without reference flagged",
			src: "package x\n\nimport \"testing\"\n\nfunc TestA(t *testing.T) {\n" +
				"\tt.Skipf(\"missing fixture %s\", \"x\")\n}\n",
			want: "Skipf without a linked issue reference",
		},
		{
			name: "skipnow always flagged",
			src: "package x\n\nimport \"testing\"\n\nfunc TestA(t *testing.T) {\n" +
				"\tt.SkipNow()\n}\n",
			want: "SkipNow without a linked issue reference",
		},
		{
			name: "benchmark skip in scope too",
			src: "package x\n\nimport \"testing\"\n\nfunc BenchmarkA(b *testing.B) {\n" +
				"\tb.Skip(\"too slow\")\n}\n",
			want: "Skip without a linked issue reference",
		},
		{
			name: "reference built by concatenation passes",
			src: "package x\n\nimport \"testing\"\n\nfunc TestA(t *testing.T) {\n" +
				"\tt.Skip(\"blocked\" + \" on #13\")\n}\n",
		},
		{
			name: "non-TB skip helper out of scope",
			src: "package x\n\ntype lister struct{}\n\nfunc (lister) Skip(string) {}\n\n" +
				"type holder struct{ l lister }\n\nvar h holder\n\nfunc init() { h.l.Skip(\"not a test skip\") }\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The rule only applies to test files; the same source as a
			// non-test file must always be clean (compile-ability of the
			// fixture as a real test is irrelevant to the linter, which
			// only parses).
			name := "internal/x/a_test.go"
			if tc.name == "non-TB skip helper out of scope" {
				name = "internal/x/a_skip_test.go"
			}
			root := writeTree(t, map[string]string{name: tc.src})
			vs, err := lint(root)
			if err != nil {
				t.Fatal(err)
			}
			if tc.want == "" {
				if len(vs) != 0 {
					t.Fatalf("clean fixture flagged: %v", vs)
				}
				return
			}
			if len(vs) != 1 || !strings.Contains(vs[0], tc.want) {
				t.Fatalf("violations = %v, want one containing %q", vs, tc.want)
			}
		})
	}
}

// TestSkipRuleIgnoresNonTestFiles: an identically-shaped call in a
// non-test file is out of the rule's scope (there is nothing to skip
// outside the testing framework; flagging production methods named
// Skip would be noise).
func TestSkipRuleIgnoresNonTestFiles(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/x/a.go": "package x\n\ntype tb struct{}\n\nfunc (tb) Skip(string) {}\n\nfunc F() { var t tb; t.Skip(\"whatever\") }\n",
	})
	vs, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("non-test file flagged by the skip rule: %v", vs)
	}
}
