// Command lintgate is the repo-local style gate behind `make lint`.
// It needs nothing beyond the standard library, so CI can run it
// without fetching tools. It keeps only the file-level rules that a
// type-checked analysis cannot or need not express; the semantic
// rules (wall-clock confinement, seeded randomness, obs naming,
// error handling, determinism proofs) live in internal/staticlint
// and run behind `make staticgate`:
//
//   - every .go file must be gofmt-clean;
//   - the unsafe package is not used at all;
//   - t.Skip in tests must carry a linked issue reference ("#123" or a
//     URL) in its message: an unreferenced skip is how a disabled test
//     quietly becomes a permanently disabled test;
//   - no extensionless regular files under cmd/: command directories
//     hold Go sources and docs, so a bare stray file there is almost
//     always an accidental `> x` or editor artifact that would ship
//     into every checkout.
//
// Usage: lintgate [root]  (default ".")
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// skipRefPattern matches an issue reference ("#123") or a URL inside a
// skip message; one of them must be present for t.Skip to pass the gate.
var skipRefPattern = regexp.MustCompile(`#\d+|://`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintgate:", err)
		os.Exit(1)
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "lintgate: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

func lint(root string) ([]string, error) {
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if !strings.HasSuffix(path, ".go") {
			relSlash := filepath.ToSlash(rel)
			if strings.HasPrefix(relSlash, "cmd/") && !strings.Contains(filepath.Base(path), ".") {
				violations = append(violations, fmt.Sprintf("%s: extensionless file under cmd/ (stray artifact? delete it or give it a real extension)", relSlash))
			}
			return nil
		}
		vs, err := lintFile(path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		violations = append(violations, vs...)
		return nil
	})
	return violations, err
}

func lintFile(path, rel string) ([]string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var violations []string

	formatted, err := format.Source(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", rel, err)
	}
	if !bytes.Equal(src, formatted) {
		violations = append(violations, fmt.Sprintf("%s: not gofmt-clean (run gofmt -w)", rel))
	}

	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, 0)
	if err != nil {
		return nil, err
	}

	for _, imp := range file.Imports {
		ipath, _ := strconv.Unquote(imp.Path.Value)
		if ipath == "unsafe" {
			violations = append(violations, fmt.Sprintf("%s:%d: unsafe is not used in this codebase",
				rel, fset.Position(imp.Pos()).Line))
		}
	}

	if strings.HasSuffix(rel, "_test.go") {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Skip" && name != "Skipf" && name != "SkipNow" {
				return true
			}
			// Only method calls on a plain identifier (t, b, f) are in
			// scope; a skip helper hanging off a field access or call
			// result is not a testing.TB skip.
			if _, ok := sel.X.(*ast.Ident); !ok {
				return true
			}
			if skipCallHasReference(call) {
				return true
			}
			violations = append(violations, fmt.Sprintf("%s:%d: %s without a linked issue reference (put \"#123\" or a URL in the skip message so the skip stays tracked)",
				rel, fset.Position(call.Pos()).Line, name))
			return true
		})
	}
	return violations, nil
}

// skipCallHasReference reports whether any string literal in the skip
// call's arguments carries an issue reference or URL. SkipNow takes no
// arguments, so it can never pass; use Skip with a message instead.
func skipCallHasReference(call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil && skipRefPattern.MatchString(s) {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
