// Command lintgate is the repo-local static gate behind `make lint`.
// It needs nothing beyond the standard library, so CI can run it
// without fetching tools, and it encodes rules specific to this
// codebase rather than general style:
//
//   - every .go file must be gofmt-clean;
//   - time.Now is confined to internal/obs, internal/tracecache,
//     cmd/, and tests — everything else must be deterministic, since
//     the measurement model is fully seeded and cached traces are
//     required to be bit-identical across runs;
//   - math/rand is forbidden outside internal/stats: all randomness
//     flows through the seeded stats.RNG so results reproduce;
//   - the unsafe package is not used at all;
//   - t.Skip in tests must carry a linked issue reference ("#123" or a
//     URL) in its message: an unreferenced skip is how a disabled test
//     quietly becomes a permanently disabled test;
//   - span, counter, event, histogram, and attribute names passed to
//     the obs recorder must be declared constants from
//     internal/obs/names.go, not string literals: ad-hoc names drift
//     between emitters and break the deterministic-export guarantee
//     (two spellings of one concept produce two metric families).
//
// Usage: lintgate [root]  (default ".")
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// skipRefPattern matches an issue reference ("#123") or a URL inside a
// skip message; one of them must be present for t.Skip to pass the gate.
var skipRefPattern = regexp.MustCompile(`#\d+|://`)

// timeNowAllowed lists path prefixes (relative, slash-separated) where
// reading the wall clock is legitimate: instrumentation, cache
// freshness, and the CLI entry points.
var timeNowAllowed = []string{
	"internal/obs/",
	"internal/tracecache/",
	"cmd/",
}

// obsNameArg maps obs recorder and span-handle method names to the
// index of their name argument. A string literal at that position is a
// violation outside internal/obs itself: names must come from the
// constants in internal/obs/names.go so every emitter agrees on the
// spelling.
var obsNameArg = map[string]int{
	"Start":       0,
	"StartSpan":   0,
	"Event":       0,
	"Add":         0,
	"ObserveHist": 0,
	"MergeHist":   0,
	"NameLane":    2,
	"SimSpan":     2,
}

// obsAttrFuncs are the obs package's attribute constructors; their
// first argument is an attribute name.
var obsAttrFuncs = map[string]bool{"String": true, "Int": true, "Bool": true}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintgate:", err)
		os.Exit(1)
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "lintgate: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

func lint(root string) ([]string, error) {
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		vs, err := lintFile(path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		violations = append(violations, vs...)
		return nil
	})
	return violations, err
}

func lintFile(path, rel string) ([]string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var violations []string

	formatted, err := format.Source(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", rel, err)
	}
	if !bytes.Equal(src, formatted) {
		violations = append(violations, fmt.Sprintf("%s: not gofmt-clean (run gofmt -w)", rel))
	}

	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, 0)
	if err != nil {
		return nil, err
	}

	isTest := strings.HasSuffix(rel, "_test.go")
	timeName := "" // local name of the time package import, if any
	obsName := ""  // local name of the internal/obs import, if any
	for _, imp := range file.Imports {
		ipath, _ := strconv.Unquote(imp.Path.Value)
		switch ipath {
		case "time":
			timeName = "time"
			if imp.Name != nil {
				timeName = imp.Name.Name
			}
		case "gpuport/internal/obs":
			obsName = "obs"
			if imp.Name != nil {
				obsName = imp.Name.Name
			}
		case "math/rand", "math/rand/v2":
			if !strings.HasPrefix(rel, "internal/stats/") {
				violations = append(violations, fmt.Sprintf("%s:%d: %s is forbidden outside internal/stats (use the seeded stats.RNG)",
					rel, fset.Position(imp.Pos()).Line, ipath))
			}
		case "unsafe":
			violations = append(violations, fmt.Sprintf("%s:%d: unsafe is not used in this codebase",
				rel, fset.Position(imp.Pos()).Line))
		}
	}

	if isTest {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Skip" && name != "Skipf" && name != "SkipNow" {
				return true
			}
			// Only method calls on a plain identifier (t, b, f) are in
			// scope; a skip helper hanging off a field access or call
			// result is not a testing.TB skip.
			if _, ok := sel.X.(*ast.Ident); !ok {
				return true
			}
			if skipCallHasReference(call) {
				return true
			}
			violations = append(violations, fmt.Sprintf("%s:%d: %s without a linked issue reference (put \"#123\" or a URL in the skip message so the skip stays tracked)",
				rel, fset.Position(call.Pos()).Line, name))
			return true
		})
	}

	if timeName != "" && timeName != "_" && !isTest && !pathAllowed(rel, timeNowAllowed) {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if ok && id.Name == timeName && id.Obj == nil && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since") {
				violations = append(violations, fmt.Sprintf("%s:%d: time.%s outside the instrumentation layers (keep the model deterministic; see internal/obs)",
					rel, fset.Position(sel.Pos()).Line, sel.Sel.Name))
			}
			return true
		})
	}
	// The obs-names rule fires only in files that import internal/obs
	// (a recorder or span handle cannot be used without it), and never
	// inside internal/obs itself or tests, which legitimately mint
	// throwaway names.
	if obsName != "" && obsName != "_" && !isTest && !strings.HasPrefix(rel, "internal/obs/") {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			idx := -1
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == obsName && id.Obj == nil {
				// Package-qualified call: attribute constructors.
				if obsAttrFuncs[sel.Sel.Name] {
					idx = 0
				}
			} else if i, ok := obsNameArg[sel.Sel.Name]; ok {
				// Method call on a recorder or span handle.
				idx = i
			}
			if idx < 0 || idx >= len(call.Args) {
				return true
			}
			if lit, ok := call.Args[idx].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				violations = append(violations, fmt.Sprintf("%s:%d: string literal passed as an obs name to %s (declare it in internal/obs/names.go and use the constant)",
					rel, fset.Position(lit.Pos()).Line, sel.Sel.Name))
			}
			return true
		})
	}
	return violations, nil
}

// skipCallHasReference reports whether any string literal in the skip
// call's arguments carries an issue reference or URL. SkipNow takes no
// arguments, so it can never pass; use Skip with a message instead.
func skipCallHasReference(call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil && skipRefPattern.MatchString(s) {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

func pathAllowed(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(rel, p) {
			return true
		}
	}
	return false
}
