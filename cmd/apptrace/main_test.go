package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuport/internal/irgl"
)

func TestDefaultRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-app", "bfs-wl", "-input", "rand-8k"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"validated", "per-kernel totals", "bfs_relax", "modelled runtime", "MALI"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestConfiguredSpeedupColumn(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-app", "sssp-wl", "-input", "rand-8k", "-config", "sg,fg8"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[sg,fg8]") {
		t.Error("configured header missing")
	}
}

func TestJSONExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	var buf bytes.Buffer
	if err := run([]string{"-app", "cc-wl", "-input", "rand-8k", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := irgl.ReadTraceJSON(f)
	if err != nil {
		t.Fatalf("exported trace unreadable: %v", err)
	}
	if tr.App != "cc-wl" || len(tr.Launches) == 0 {
		t.Errorf("trace content: app=%s launches=%d", tr.App, len(tr.Launches))
	}
}

func TestGraphFileInput(t *testing.T) {
	// Round-trip through graphgen's binary format.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	var buf bytes.Buffer
	// Reuse the graph package through the graphgen-equivalent flow.
	if err := writeTestGraph(path); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-app", "tri-merge", "-graph", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tri-merge on custom-bin") {
		t.Errorf("output: %s", buf.String()[:80])
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-app", "nope"},
		{"-app", "bfs-wl", "-input", "nope"},
		{"-app", "bfs-wl", "-graph", "/nonexistent.bin"},
		{"-app", "bfs-wl", "-input", "rand-8k", "-config", "fg,fg8"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
