package main

import (
	"os"

	"gpuport/internal/graph"
)

// writeTestGraph writes a small binary graph for the -graph flag test.
func writeTestGraph(path string) error {
	g := graph.GenerateUniform("custom-bin", 400, 5, 11)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.WriteBinary(f, g)
}
