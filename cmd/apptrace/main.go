// Command apptrace runs one graph application on one input, validates
// the result against the sequential reference, and reports its
// execution trace: per-kernel launch statistics and the modelled
// runtime on every chip under a chosen optimisation configuration.
//
// Usage:
//
//	apptrace -app bfs-wl -input usa.ny
//	apptrace -app sssp-nf -input soc-pokec -config sg,fg8,oitergb
//	apptrace -app pr-residual -input rand-8k -json trace.json
//	apptrace -app cc-sv -graph my-graph.bin
//
// -input names one of the standard study inputs; -graph loads a binary
// file written by graphgen.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/cost"
	"gpuport/internal/graph"
	"gpuport/internal/opt"
	"gpuport/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "apptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("apptrace", flag.ContinueOnError)
	appName := fs.String("app", "bfs-wl", "application name (see gpuport table 7)")
	inputName := fs.String("input", "usa.ny", "standard input name")
	graphFile := fs.String("graph", "", "binary graph file (overrides -input)")
	cfgStr := fs.String("config", "baseline", "optimisation configuration, e.g. sg,fg8,oitergb")
	jsonOut := fs.String("json", "", "write the raw trace as JSON to this file")
	topN := fs.Int("top", 5, "show the N heaviest kernel launches")
	if err := fs.Parse(args); err != nil {
		return err
	}

	app, err := apps.ByName(*appName)
	if err != nil {
		return err
	}
	var g *graph.Graph
	if *graphFile != "" {
		f, err := os.Open(*graphFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if g, err = graph.ReadBinary(f); err != nil {
			return err
		}
	} else if g, err = graph.InputByName(*inputName); err != nil {
		return err
	}
	cfg, err := opt.Parse(*cfgStr)
	if err != nil {
		return err
	}

	trace, out := app.Run(g)
	if err := app.Check(g, out); err != nil {
		return fmt.Errorf("%s produced a wrong answer on %s: %w", app.Name, g.Name, err)
	}
	fmt.Fprintf(w, "%s on %s: answer validated against the sequential reference\n\n",
		app.Name, g.Name)

	fmt.Fprintf(w, "trace: %d kernel launches, %d host loops, %d total edge work\n",
		trace.TotalLaunches(), len(trace.Loops), trace.TotalEdgeWork())

	// Aggregate per kernel name.
	type agg struct {
		launches                       int
		items, work, pushes, rmws, ras int64
	}
	byKernel := map[string]*agg{}
	var order []string
	for _, l := range trace.Launches {
		a, ok := byKernel[l.Name]
		if !ok {
			a = &agg{}
			byKernel[l.Name] = a
			order = append(order, l.Name)
		}
		a.launches++
		a.items += l.Items
		a.work += l.TotalWork
		a.pushes += l.AtomicPushes
		a.rmws += l.AtomicRMWs
		a.ras += l.RandomAccesses
	}
	t := report.NewTable("per-kernel totals",
		"Kernel", "Launches", "Items", "Edge work", "Pushes", "Data RMWs", "Irregular").
		RightAlign(1, 2, 3, 4, 5, 6)
	for _, name := range order {
		a := byKernel[name]
		t.Row(name, a.launches, a.items, a.work, a.pushes, a.rmws, a.ras)
	}
	t.Render(w)

	// Heaviest launches.
	if *topN > 0 {
		heavy := make([]int, 0, len(trace.Launches))
		for i := range trace.Launches {
			heavy = append(heavy, i)
		}
		for i := 0; i < len(heavy); i++ {
			for j := i + 1; j < len(heavy); j++ {
				if trace.Launches[heavy[j]].TotalWork > trace.Launches[heavy[i]].TotalWork {
					heavy[i], heavy[j] = heavy[j], heavy[i]
				}
			}
			if i >= *topN {
				break
			}
		}
		n := *topN
		if n > len(heavy) {
			n = len(heavy)
		}
		ht := report.NewTable(fmt.Sprintf("top %d launches by edge work", n),
			"#", "Kernel", "Items", "Edge work", "Max item", "Pushes").
			RightAlign(0, 2, 3, 4, 5)
		for i := 0; i < n; i++ {
			l := trace.Launches[heavy[i]]
			ht.Row(heavy[i], l.Name, l.Items, l.TotalWork, l.MaxWork, l.AtomicPushes)
		}
		ht.Render(w)
	}

	// Modelled runtimes across chips.
	tp := cost.NewTraceProfile(trace)
	ct := report.NewTable(fmt.Sprintf("modelled runtime under [%s] (model ms)", cfg),
		"Chip", "baseline", "configured", "speedup").
		RightAlign(1, 2, 3)
	for _, ch := range chip.All() {
		base := cost.Estimate(ch, opt.Config{}, tp)
		tuned := cost.Estimate(ch, cfg, tp)
		ct.Row(ch.Name, report.F(base/1e6, 3), report.F(tuned/1e6, 3), report.F(base/tuned, 2)+"x")
	}
	ct.Render(w)

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "raw trace written to %s\n", *jsonOut)
	}
	return nil
}
