// Command staticgate runs the internal/staticlint whole-program
// analysis engine over the module and gates on its findings.
//
// Usage: staticgate [flags] [root]   (root defaults to ".")
//
//	-list             print the analyzers and exit
//	-only a,b,c       run only the named analyzers
//	-json             write the report as byte-stable JSON to stdout
//	-baseline FILE    committed debt ledger (default .staticgate-baseline.json
//	                  under the root); findings in it pass, findings not in
//	                  it fail, entries that no longer fire fail (the ledger
//	                  may only shrink)
//	-baseline-budget N  fail if the ledger holds more than N entries; CI
//	                  pins this to 0 so the ledger cannot quietly grow
//	-lockgraph BASE   also write the whole-program lock-acquisition
//	                  graph as BASE.json and BASE.dot (byte-stable
//	                  across runs; CI uploads them as artifacts)
//
// Exit status: 0 clean, 1 findings or baseline drift, 2 usage or load
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gpuport/internal/staticlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("staticgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list analyzers and exit")
		only     = fs.String("only", "", "comma-separated analyzer names to run (default all)")
		jsonOut  = fs.Bool("json", false, "write the report as byte-stable JSON to stdout")
		baseline = fs.String("baseline", "", "baseline file (default <root>/.staticgate-baseline.json)")
		budget   = fs.Int("baseline-budget", -1, "fail if the baseline holds more than this many entries (-1 disables)")
		lockBase = fs.String("lockgraph", "", "write the lock-acquisition graph to BASE.json and BASE.dot")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := staticlint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		names := strings.Split(*only, ",")
		known := map[string]bool{}
		for _, a := range analyzers {
			known[a.Name] = true
		}
		for _, n := range names {
			if !known[n] {
				fmt.Fprintf(stderr, "staticgate: unknown analyzer %q (see -list)\n", n)
				return 2
			}
		}
		analyzers = staticlint.AnalyzersByName(names)
	}

	root := "."
	if fs.NArg() > 0 {
		root = fs.Arg(0)
	}
	blPath := *baseline
	if blPath == "" {
		blPath = filepath.Join(root, ".staticgate-baseline.json")
	}
	bl, err := staticlint.ReadBaseline(blPath)
	if err != nil {
		fmt.Fprintln(stderr, "staticgate:", err)
		return 2
	}
	if *budget >= 0 && len(bl.Entries) > *budget {
		fmt.Fprintf(stderr, "staticgate: baseline holds %d entries, budget is %d (the ledger may only shrink)\n",
			len(bl.Entries), *budget)
		return 1
	}

	prog, err := staticlint.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "staticgate:", err)
		return 2
	}
	result := staticlint.Run(prog, staticlint.DefaultConfig(), analyzers)
	fresh, stale := bl.Apply(result)

	if *lockBase != "" {
		if err := writeLockGraph(prog, *lockBase); err != nil {
			fmt.Fprintln(stderr, "staticgate:", err)
			return 2
		}
	}

	if *jsonOut {
		raw, err := staticlint.EncodeJSON(result)
		if err != nil {
			fmt.Fprintln(stderr, "staticgate:", err)
			return 2
		}
		if _, err := stdout.Write(raw); err != nil {
			fmt.Fprintln(stderr, "staticgate:", err)
			return 2
		}
	} else {
		fmt.Fprint(stdout, staticlint.RenderText(result))
	}

	for _, e := range stale {
		fmt.Fprintf(stderr, "staticgate: stale baseline entry no longer fires (delete it): %s: %s: %s\n", e.File, e.Rule, e.Message)
	}
	if len(fresh) > 0 || len(stale) > 0 {
		fmt.Fprintf(stderr, "staticgate: %d new finding(s), %d stale baseline entr(ies)\n", len(fresh), len(stale))
		return 1
	}
	return 0
}

// writeLockGraph emits the lock-acquisition graph as base.json and
// base.dot. Both encodings are deterministic for a given program, so
// CI can diff the artifacts across runs and commits.
func writeLockGraph(prog *staticlint.Program, base string) error {
	g := staticlint.BuildLockGraph(prog)
	raw, err := g.EncodeJSON()
	if err != nil {
		return fmt.Errorf("lockgraph: %w", err)
	}
	if err := os.WriteFile(base+".json", raw, 0o644); err != nil {
		return fmt.Errorf("lockgraph: %w", err)
	}
	if err := os.WriteFile(base+".dot", g.EncodeDOT(), 0o644); err != nil {
		return fmt.Errorf("lockgraph: %w", err)
	}
	return nil
}
