package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtureRoot = "../../internal/staticlint/testdata/src/fixture"

// writeBaseline drops a baseline JSON into a temp dir and returns its
// path, so fixture runs never touch a committed ledger.
func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The fixture's errcheck-only findings, as baseline entries. The bare
// //lint:allow pragma at errs.go:32 is scanned on every run, so any
// passing fixture baseline must carry its "lint" finding too.
const fixtureErrcheckBaseline = `{"entries":[
  {"rule":"errcheck","file":"internal/errs/errs.go","message":"error result silently dropped (assign it and handle or propagate it)"},
  {"rule":"errcheck","file":"internal/errs/errs.go","message":"error result silently dropped (assign it and handle or propagate it)"},
  {"rule":"lint","file":"internal/errs/errs.go","message":"//lint:allow needs a rule name and a reason (//lint:allow <rule> <why>)"}
]}`

func TestList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 13 {
		t.Fatalf("-list printed %d analyzers, want 13:\n%s", len(lines), out.String())
	}
	for _, name := range []string{"ctxprop", "detpure", "errcheck", "floatcmp", "globalrand", "goleak", "lockguard", "lockorder", "maprange", "mutexlock", "obsliteral", "obsnames", "walltime"} {
		if !strings.Contains(out.String(), name+" ") {
			t.Errorf("-list missing analyzer %s", name)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown analyzer "nope"`) {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestLoadFailure(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{t.TempDir()}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "go.mod") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestBadBaselineFile(t *testing.T) {
	bl := writeBaseline(t, "{nope")
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", bl, fixtureRoot}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2; stderr %s", code, errb.String())
	}
}

// TestRepoClean is the gate's reason to exist: the repository itself
// analyses clean against its committed (empty) baseline.
func TestRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../.."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.HasSuffix(out.String(), "staticgate: 0 finding(s), 3 suppressed\n") {
		t.Errorf("summary line drifted:\n%s", out.String())
	}
}

func TestFixtureFindingsFail(t *testing.T) {
	bl := writeBaseline(t, `{"entries":[]}`)
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "errcheck", "-baseline", bl, fixtureRoot}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "3 new finding(s), 0 stale baseline entr(ies)") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestBaselineAbsorbsFindings(t *testing.T) {
	bl := writeBaseline(t, fixtureErrcheckBaseline)
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "errcheck", "-baseline", bl, fixtureRoot}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0; stderr %s", code, errb.String())
	}
}

func TestStaleBaselineEntryFails(t *testing.T) {
	stale := strings.Replace(fixtureErrcheckBaseline, "]}",
		`,{"rule":"errcheck","file":"internal/errs/gone.go","message":"paid off"}]}`, 1)
	bl := writeBaseline(t, stale)
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "errcheck", "-baseline", bl, fixtureRoot}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "stale baseline entry no longer fires (delete it): internal/errs/gone.go") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestBaselineBudget(t *testing.T) {
	bl := writeBaseline(t, fixtureErrcheckBaseline)
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "errcheck", "-baseline", bl, "-baseline-budget", "0", fixtureRoot}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "baseline holds 3 entries, budget is 0") {
		t.Errorf("stderr = %q", errb.String())
	}
}

// TestLockGraphArtifact: -lockgraph writes a JSON and a DOT rendering
// of the lock-acquisition graph, byte-identical across runs.
func TestLockGraphArtifact(t *testing.T) {
	bl := writeBaseline(t, `{"entries":[]}`)
	readPair := func(base string) (string, string) {
		t.Helper()
		var out, errb bytes.Buffer
		// The fixture has findings (exit 1); the artifact is written anyway.
		if code := run([]string{"-only", "lockorder", "-baseline", bl, "-lockgraph", base, fixtureRoot}, &out, &errb); code != 1 {
			t.Fatalf("exit %d, want 1; stderr %s", code, errb.String())
		}
		j, err := os.ReadFile(base + ".json")
		if err != nil {
			t.Fatal(err)
		}
		d, err := os.ReadFile(base + ".dot")
		if err != nil {
			t.Fatal(err)
		}
		return string(j), string(d)
	}
	dir := t.TempDir()
	j1, d1 := readPair(filepath.Join(dir, "one"))
	j2, d2 := readPair(filepath.Join(dir, "two"))
	if j1 != j2 {
		t.Error("lock-graph JSON is not byte-stable across runs")
	}
	if d1 != d2 {
		t.Error("lock-graph DOT is not byte-stable across runs")
	}
	for _, want := range []string{`"version": 1`, "lockord.a", "lockord.b", "lockord.c"} {
		if !strings.Contains(j1, want) {
			t.Errorf("JSON artifact missing %q:\n%s", want, j1)
		}
	}
	if !strings.HasPrefix(d1, "digraph lockorder {") {
		t.Errorf("DOT artifact does not open a digraph:\n%.80s", d1)
	}
	if !strings.Contains(d1, "->") {
		t.Errorf("DOT artifact has no edges:\n%s", d1)
	}
}

// TestLockGraphWriteFailure: an unwritable base path is a load-class
// error (exit 2), not a silent skip.
func TestLockGraphWriteFailure(t *testing.T) {
	bl := writeBaseline(t, `{"entries":[]}`)
	var out, errb bytes.Buffer
	base := filepath.Join(t.TempDir(), "no", "such", "dir", "lockgraph")
	if code := run([]string{"-only", "lockorder", "-baseline", bl, "-lockgraph", base, fixtureRoot}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2; stderr %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "lockgraph:") {
		t.Errorf("stderr = %q", errb.String())
	}
}

// TestJSONStable: two -json runs over the same tree are byte-identical.
func TestJSONStable(t *testing.T) {
	bl := writeBaseline(t, `{"entries":[]}`)
	args := []string{"-only", "errcheck", "-json", "-baseline", bl, fixtureRoot}
	var out1, out2, errb bytes.Buffer
	if code := run(args, &out1, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (findings present); stderr %s", code, errb.String())
	}
	if code := run(args, &out2, &errb); code != 1 {
		t.Fatalf("second run exit %d", code)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("-json output is not byte-stable across runs")
	}
	if !strings.HasPrefix(out1.String(), "{\n  \"version\": 1,") {
		t.Errorf("JSON must lead with its version, got %.40q", out1.String())
	}
}
