package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The dataset-generating commands share one CSV written once, so the
// test binary pays the full sweep a single time.
var (
	csvOnce sync.Once
	csvPath string
	csvErr  error
)

func sharedCSV(t *testing.T) string {
	t.Helper()
	csvOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gpuport-test")
		if err != nil {
			csvErr = err
			return
		}
		csvPath = filepath.Join(dir, "study.csv")
		var buf bytes.Buffer
		csvErr = run([]string{"-out", csvPath, "dataset"}, &buf)
	})
	if csvErr != nil {
		t.Fatal(csvErr)
	}
	return csvPath
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestStaticTables(t *testing.T) {
	cases := map[string]string{
		"1":  "Table I",
		"5":  "Table V",
		"6":  "Table VI",
		"7":  "Table VII",
		"8":  "Table VIII",
		"10": "Table X",
	}
	for n, want := range cases {
		out := runCLI(t, "table", n)
		if !strings.Contains(out, want) {
			t.Errorf("table %s output missing %q", n, want)
		}
	}
}

func TestDataTablesFromCSV(t *testing.T) {
	csv := sharedCSV(t)
	for _, n := range []string{"2", "3", "4", "9"} {
		out := runCLI(t, "-in", csv, "table", n)
		if !strings.Contains(out, "Table") {
			t.Errorf("table %s produced no table", n)
		}
	}
}

func TestFiguresFromCSV(t *testing.T) {
	csv := sharedCSV(t)
	for _, n := range []string{"1", "2", "3", "4"} {
		out := runCLI(t, "-in", csv, "figure", n)
		if !strings.Contains(out, "Figure") {
			t.Errorf("figure %s produced no figure", n)
		}
	}
	out := runCLI(t, "figure", "5")
	if !strings.Contains(out, "Figure 5") {
		t.Error("figure 5 missing")
	}
}

func TestMicroAndInputs(t *testing.T) {
	out := runCLI(t, "micro")
	if !strings.Contains(out, "sg-cmb") || !strings.Contains(out, "m-divg") {
		t.Error("micro output incomplete")
	}
	out = runCLI(t, "inputs")
	if !strings.Contains(out, "usa.ny") || !strings.Contains(out, "soc-pokec") {
		t.Error("inputs output incomplete")
	}
}

func TestDecisionsCommand(t *testing.T) {
	csv := sharedCSV(t)
	out := runCLI(t, "-in", csv, "decisions", "chip")
	if !strings.Contains(out, "partition (M4000,*,*)") {
		t.Errorf("decisions output:\n%s", out[:min(300, len(out))])
	}
	if !strings.Contains(out, "median=") || !strings.Contains(out, "CL=") {
		t.Error("decisions output missing statistics")
	}
}

func TestSamplingCommand(t *testing.T) {
	csv := sharedCSV(t)
	out := runCLI(t, "-in", csv, "sampling", "global")
	if !strings.Contains(out, "Sampling sufficiency") || !strings.Contains(out, "100%") {
		t.Errorf("sampling output:\n%s", out)
	}
}

func TestPredictCommand(t *testing.T) {
	csv := sharedCSV(t)
	out := runCLI(t, "-in", csv, "predict", "input")
	if !strings.Contains(out, "Leave-one-input-out") || !strings.Contains(out, "usa.ny") {
		t.Errorf("predict output:\n%s", out)
	}
}

func TestReportCommand(t *testing.T) {
	csv := sharedCSV(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "r.md")
	out := runCLI(t, "-in", csv, "-out", path, "report")
	if !strings.Contains(out, "report written") {
		t.Fatalf("output: %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{"# gpuport study report", "**Table IX", "sampling sufficiency", "Leave-one-chip-out"} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"table"},
		{"table", "zz"},
		{"table", "99"},
		{"figure"},
		{"figure", "0"},
		{"bogus"},
		{"decisions", "sideways"},
		{"sampling", "sideways"},
		{"predict", "sideways"},
		{"-in", "/nonexistent/file.csv", "table", "2"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestDatasetCommandHint(t *testing.T) {
	csv := sharedCSV(t)
	out := runCLI(t, "-in", csv, "dataset")
	if !strings.Contains(out, "dataset: 6 chips x 17 apps x 3 inputs") {
		t.Errorf("dataset summary missing: %q", out)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFaultsFlagAndResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.csv")
	out := runCLI(t, "-faults", "heavy,seed=3", "-resume", ck, "dataset")
	for _, want := range []string{"coverage:", "fault profile:", "partial"} {
		if !strings.Contains(out, want) {
			t.Errorf("faulted dataset output missing %q:\n%s", want, out)
		}
	}
	if st, err := os.Stat(ck); err != nil || st.Size() == 0 {
		t.Fatalf("checkpoint not written: %v", err)
	}
	// Re-running with the same checkpoint resumes every cell.
	out = runCLI(t, "-faults", "heavy,seed=3", "-resume", ck, "dataset")
	if !strings.Contains(out, "resumed from checkpoint") {
		t.Errorf("second run did not resume:\n%s", out)
	}
}

func TestTraceCacheFlag(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	coldCSV := filepath.Join(dir, "cold.csv")
	warmCSV := filepath.Join(dir, "warm.csv")

	cold := runCLI(t, "-trace-cache", cache, "-out", coldCSV, "dataset")
	if !strings.Contains(cold, "Trace cache") || !strings.Contains(cold, "misses (traced fresh)") {
		t.Errorf("cold run missing trace-cache accounting:\n%s", cold)
	}
	entries, err := filepath.Glob(filepath.Join(cache, "*.trace"))
	if err != nil || len(entries) != 51 {
		t.Fatalf("cache entries = %d (%v), want 51 (17 apps x 3 inputs)", len(entries), err)
	}

	warm := runCLI(t, "-trace-cache", cache, "-out", warmCSV, "dataset")
	if !strings.Contains(warm, "hit rate") || !strings.Contains(warm, "100.0%") {
		t.Errorf("warm run not fully cached:\n%s", warm)
	}
	a, err := os.ReadFile(coldCSV)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(warmCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("cold and warm cache runs produced different datasets")
	}
}

func TestTraceCacheFlagRejectsBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-trace-cache", file, "dataset"}, &buf); err == nil {
		t.Fatal("regular file accepted as trace cache directory")
	}
}

func TestBadFaultSpecRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-faults", "bogus=1", "dataset"}, &buf); err == nil {
		t.Fatal("bad -faults spec accepted")
	}
}

func TestObsFlags(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "obs-trace.json")
	metrics := filepath.Join(dir, "obs-metrics.prom")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	runCLI(t, "-obs-trace", trace, "-obs-metrics", metrics,
		"-cpuprofile", cpu, "-memprofile", mem,
		"-out", filepath.Join(dir, "study.csv"), "dataset")

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"traceEvents"`, "harness (real)", "simulated kernel timeline",
		"trace-pair", "sweep-job", "timeline",
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("trace export missing %q", want)
		}
	}
	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gpuport_counter_total", "gpuport_hist_bucket", "gpuport_span_total",
	} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("metrics export missing %q", want)
		}
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s not written: %v", p, err)
		}
	}
}
