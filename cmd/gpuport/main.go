// Command gpuport reproduces the study end to end: it generates the
// dataset (running all 17 graph applications on the 3 inputs and
// sweeping the 96 optimisation configurations across the 6 chip
// models), runs the portability analysis, and prints every table and
// figure of the paper.
//
// Usage:
//
//	gpuport all                  print every table and figure
//	gpuport dataset -out d.csv   generate and save the dataset
//	gpuport table <1..10>        print one table
//	gpuport figure <1..5>        print one figure
//	gpuport micro                print Table X and Figure 5
//	gpuport inputs               print input properties (Table VIII)
//	gpuport decisions [dims]     print Algorithm 1 flag decisions for a
//	                             specialisation (global, chip, app,
//	                             input, chip_app, ... ); default global
//	gpuport sampling [dims]      Section IX future work: how small a
//	                             sample of the test domain suffices
//	gpuport predict [app|input|chip]
//	                             Section IX future work: leave-one-out
//	                             prediction for unseen environments
//	gpuport stability [N]        re-run the study under N seeds and
//	                             report how stable the conclusions are
//	gpuport transfer             re-run the study on fresh inputs of the
//	                             same classes and compare conclusions
//	gpuport report [-out f.md]   write the full study + extensions as a
//	                             markdown report (default REPORT.md)
//
// Flags (before the subcommand):
//
//	-seed N       noise seed (default 42)
//	-runs N       timed runs per cell (default 3)
//	-in file      load a previously saved dataset instead of generating
//	-out file     save the generated dataset as CSV
//	-faults spec  inject faults while collecting: "light", "heavy", or
//	              key=value pairs like "transient=0.05,corrupt=0.02"
//	              (see internal/fault); the run degrades gracefully to a
//	              partial dataset and reports its coverage
//	-resume file  persist completed cells to this checkpoint CSV as the
//	              sweep runs; an interrupted run (Ctrl-C) restarted with
//	              the same flag resumes bit-identically
//	-trace-cache dir
//	              content-addressed trace cache: (app, input) pairs
//	              whose traces are cached skip execution entirely, so
//	              repeated campaigns (and interrupted-then-retried
//	              trace phases) are near-instant; the dataset is
//	              bit-identical with or without the cache. Delete the
//	              directory (or any file in it) to invalidate; damaged
//	              entries are detected and re-traced
//	-trace-cache-mb N
//	              trace cache size cap in MiB (default 256); least-
//	              recently-used entries are evicted beyond it
//	-workers N    worker count for tracing and collection (default
//	              GOMAXPROCS)
//	-v            progress logging to stderr
//	-md           render tables as markdown instead of aligned text
//
// Observability flags (before the subcommand):
//
//	-obs-trace file
//	              export the run's observability timeline as Chrome
//	              trace-event JSON (loadable in Perfetto or
//	              chrome://tracing): the real harness track plus the
//	              simulated kernel timeline. Implies full span capture.
//	-obs-metrics file
//	              export Prometheus-style text metrics: pipeline
//	              counters, deterministic histograms, span/event totals
//	              and stage timings
//	-cpuprofile file / -memprofile file
//	              write pprof CPU / heap profiles of the run
//	              (see `make profile`); inspect with `go tool pprof`
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"

	"gpuport/internal/analysis"
	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/dataset"
	"gpuport/internal/fault"
	"gpuport/internal/graph"
	"gpuport/internal/measure"
	"gpuport/internal/microbench"
	"gpuport/internal/obs"
	"gpuport/internal/report"
	"gpuport/internal/study"
	"gpuport/internal/tracecache"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "gpuport: interrupted; completed shards are saved when -resume is set")
		} else {
			fmt.Fprintln(os.Stderr, "gpuport:", err)
		}
		os.Exit(1)
	}
}

// run keeps the historical signature for tests; it is runCtx without
// cancellation.
func run(args []string, w io.Writer) error {
	return runCtx(context.Background(), args, w)
}

func runCtx(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gpuport", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "measurement noise seed")
	runs := fs.Int("runs", 3, "timed runs per cell")
	inFile := fs.String("in", "", "load dataset from CSV instead of generating")
	outFile := fs.String("out", "", "save generated dataset to CSV")
	faultSpec := fs.String("faults", "", "fault injection profile: none, light, heavy, or key=value pairs")
	resume := fs.String("resume", "", "checkpoint CSV: persist completed cells and resume interrupted sweeps")
	cacheDir := fs.String("trace-cache", "", "directory for the content-addressed trace cache (created if missing)")
	cacheMB := fs.Int("trace-cache-mb", 0, "trace cache size cap in MiB (default 256)")
	workers := fs.Int("workers", 0, "trace and collection workers (default GOMAXPROCS)")
	verbose := fs.Bool("v", false, "progress logging")
	md := fs.Bool("md", false, "render tables as markdown")
	obsTrace := fs.String("obs-trace", "", "export Chrome trace-event JSON (Perfetto-compatible) to this file")
	obsMetrics := fs.String("obs-metrics", "", "export Prometheus-style text metrics to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	report.Markdown = *md
	profile, err := fault.Parse(*faultSpec)
	if err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		rest = []string{"all"}
	}

	// The observability recorder outlives the subcommand: the exports
	// are written after it returns, whatever path it took. Span capture
	// stays off unless an export that needs it was requested.
	rec := obs.New()
	switch {
	case *obsTrace != "":
		rec.EnableSim()
	case *obsMetrics != "":
		rec.EnableTracing()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	opts := measure.Options{
		Seed:       *seed,
		Runs:       *runs,
		Ctx:        ctx,
		Workers:    *workers,
		Faults:     profile,
		Checkpoint: *resume,
		Obs:        rec,
	}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if *cacheDir != "" {
		store, err := tracecache.Open(*cacheDir, int64(*cacheMB)<<20)
		if err != nil {
			return err
		}
		opts.TraceCache = store.SetObs(rec)
	}
	loader := func() (*study.Study, error) {
		return loadOrCollect(*inFile, *outFile, opts)
	}

	runErr := dispatch(rest, w, *seed, *inFile, *outFile, opts, loader)
	if err := writeObsExports(rec, *obsTrace, *obsMetrics); err != nil && runErr == nil {
		runErr = err
	}
	if err := writeMemProfile(*memprofile); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// writeObsExports renders the recorder's snapshot to the requested
// export files. Both exports share one snapshot so they describe the
// same instant.
func writeObsExports(rec *obs.Recorder, tracePath, metricsPath string) error {
	if tracePath == "" && metricsPath == "" {
		return nil
	}
	snap := rec.Snapshot()
	write := func(path string, render func(io.Writer, *obs.Snapshot) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f, snap); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(tracePath, obs.WriteChromeTrace); err != nil {
		return err
	}
	return write(metricsPath, obs.WriteMetrics)
}

// writeMemProfile writes a heap profile after a GC, so the numbers
// reflect live memory rather than collection timing.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dispatch executes one subcommand. Split from runCtx so the
// observability exports and profiles wrap every path uniformly.
func dispatch(rest []string, w io.Writer, seed uint64, inFile, outFile string, opts measure.Options, loader func() (*study.Study, error)) error {
	switch rest[0] {
	case "all":
		s, err := loader()
		if err != nil {
			return err
		}
		return printAll(w, s)
	case "dataset":
		s, err := loader()
		if err != nil {
			return err
		}
		if err := report.TuplesSummary(w, s.Dataset()); err != nil {
			return err
		}
		if err := printCampaign(w, s); err != nil {
			return err
		}
		if outFile == "" {
			fmt.Fprintln(w, "hint: pass -out file.csv to persist the dataset")
		}
		return nil
	case "table":
		if len(rest) < 2 {
			return fmt.Errorf("usage: gpuport table <1..10>")
		}
		n, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad table number %q", rest[1])
		}
		return printTable(w, n, loader)
	case "figure":
		if len(rest) < 2 {
			return fmt.Errorf("usage: gpuport figure <1..5>")
		}
		n, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad figure number %q", rest[1])
		}
		return printFigure(w, n, loader)
	case "micro":
		if err := printTableX(w); err != nil {
			return err
		}
		return printFigure5(w)
	case "inputs":
		return printInputs(w)
	case "sampling":
		dims := analysis.Dims{Chip: true}
		if len(rest) >= 2 {
			var err error
			dims, err = parseDims(rest[1])
			if err != nil {
				return err
			}
		}
		s, err := loader()
		if err != nil {
			return err
		}
		pts := s.SamplingCurve(dims, []float64{0.1, 0.2, 0.3, 0.5, 0.75, 1.0}, 5, seed)
		return report.SamplingCurve(w, dims, pts)
	case "predict":
		dim := analysis.LOOApp
		if len(rest) >= 2 {
			switch rest[1] {
			case "app":
				dim = analysis.LOOApp
			case "input":
				dim = analysis.LOOInput
			case "chip":
				dim = analysis.LOOChip
			default:
				return fmt.Errorf("unknown hold-out dimension %q (app, input or chip)", rest[1])
			}
		}
		s, err := loader()
		if err != nil {
			return err
		}
		return report.CrossValidation(w, dim.String(), s.CrossValidate(dim))
	case "report":
		// A full markdown report: every table and figure plus the
		// extension experiments. Written to -out (default REPORT.md).
		path := outFile
		if path == "" {
			path = "REPORT.md"
		}
		s, err := loadOrCollect(inFile, "", opts)
		if err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		prevMD := report.Markdown
		report.Markdown = true
		defer func() { report.Markdown = prevMD }()
		if err := writeFullReport(f, s, seed); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", path)
		return nil
	case "transfer":
		base := opts
		base.Checkpoint = "" // one checkpoint cannot serve two sweeps
		res, err := study.InputTransfer(base)
		if err != nil {
			return err
		}
		t := report.NewTable("Do recommendations transfer to fresh inputs of the same classes?",
			"Metric", "Value").RightAlign(1)
		t.Row("global pick on standard inputs", res.GlobalA)
		t.Row("global pick on extended inputs", res.GlobalB)
		t.Row("per-chip decision agreement", report.F(res.ChipAgreement*100, 1)+"%")
		t.Row("decisions the fresh domain leaves open", report.F(res.ChipUndecided*100, 1)+"%")
		t.Row("Table III rank correlation (tau)", report.F(res.RankTau, 3))
		return t.Render(w)
	case "stability":
		n := 3
		if len(rest) >= 2 {
			v, err := strconv.Atoi(rest[1])
			if err != nil || v < 2 || v > 10 {
				return fmt.Errorf("stability wants 2..10 seeds, got %q", rest[1])
			}
			n = v
		}
		seeds := make([]uint64, n)
		for i := range seeds {
			seeds[i] = seed + uint64(i)
		}
		base := opts
		base.Checkpoint = "" // per-seed sweeps must not share a checkpoint
		res, err := study.SeedStability(base, seeds)
		if err != nil {
			return err
		}
		t := report.NewTable("Conclusion stability across measurement seeds",
			"Seed", "Global config", "Table III tau", "Table IX agreement").
			RightAlign(0, 2, 3)
		for i := range res.Seeds {
			t.Row(res.Seeds[i], res.GlobalConfigs[i],
				report.F(res.RankTau[i], 3), report.F(res.ChipAgreement[i]*100, 1)+"%")
		}
		return t.Render(w)
	case "decisions":
		dims := analysis.Dims{}
		if len(rest) >= 2 {
			var err error
			dims, err = parseDims(rest[1])
			if err != nil {
				return err
			}
		}
		s, err := loader()
		if err != nil {
			return err
		}
		printDecisions(w, s.Specialise(dims))
		return nil
	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
}

// emit chains renderer calls and plain writes, latching the first
// error so report assembly reads linearly. The report subcommand
// writes to a file, so write errors (disk full, closed pipe) must
// reach the exit status.
type emit struct {
	w   io.Writer
	err error
}

func (e *emit) do(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *emit) f(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

func (e *emit) ln(args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintln(e.w, args...)
	}
}

// writeFullReport emits the complete study plus the extension
// experiments as one markdown document.
func writeFullReport(w io.Writer, s *study.Study, seed uint64) error {
	e := &emit{w: w}
	e.ln("# gpuport study report")
	e.ln()
	e.f("Reproduction of \"One Size Doesn't Fit All\" (IISWC 2019); seed %d.\n\n", seed)
	e.do(printAll(w, s))
	e.ln("\n## Extension: sampling sufficiency (Section IX future work)")
	e.ln()
	pts := s.SamplingCurve(analysis.Dims{Chip: true}, []float64{0.1, 0.2, 0.3, 0.5, 0.75, 1.0}, 5, seed)
	e.do(report.SamplingCurve(w, analysis.Dims{Chip: true}, pts))
	e.ln("\n## Extension: leave-one-out prediction (Section IX future work)")
	e.ln()
	for _, dim := range []analysis.LOODimension{analysis.LOOApp, analysis.LOOInput, analysis.LOOChip} {
		e.do(report.CrossValidation(w, dim.String(), s.CrossValidate(dim)))
		e.ln()
	}
	return e.err
}

func parseDims(name string) (analysis.Dims, error) {
	for _, d := range analysis.AllDims() {
		if d.Name() == name {
			return d, nil
		}
	}
	return analysis.Dims{}, fmt.Errorf("unknown specialisation %q (try global, chip, app, input, chip_app, ...)", name)
}

func loadOrCollect(inFile, outFile string, opts measure.Options) (*study.Study, error) {
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		d, err := dataset.ReadCSV(f)
		if err != nil {
			return nil, err
		}
		return study.FromDataset(d), nil
	}
	s, err := study.New(opts)
	if err != nil {
		return nil, err
	}
	if opts.Progress != nil {
		// -v: stage wall-clock (trace vs sweep vs assemble) and cache
		// counters go to the progress stream, never the report proper -
		// wall-clock is not reproducible output.
		if rep := s.Report(); rep != nil {
			// Progress logging is advisory; a broken -v stream must not
			// abort the collection whose results are already in hand.
			_ = rep.Pipeline.Format(opts.Progress)
		}
	}
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := s.Dataset().WriteCSV(f); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// printCampaign renders the collection accounting when there is
// anything to tell: fault injection, missing cells, resumed cells or
// checkpoint trouble. Clean non-resumed runs stay silent.
func printCampaign(w io.Writer, s *study.Study) error {
	rep := s.Report()
	// Trace-cache accounting renders whenever the cache saw traffic
	// (and nothing otherwise), independently of fault eventfulness.
	if err := report.TraceCacheSummary(w, rep); err != nil {
		return err
	}
	if rep == nil || !rep.Eventful() {
		return nil
	}
	e := &emit{w: w}
	e.do(report.Coverage(w, rep))
	e.do(report.FaultSummary(w, rep))
	e.do(report.PartialTuples(w, s.Dataset()))
	return e.err
}

func printAll(w io.Writer, s *study.Study) error {
	d := s.Dataset()
	e := &emit{w: w}
	e.do(report.TuplesSummary(w, d))
	e.do(printCampaign(w, s))
	e.ln()
	e.do(report.Chips(w, chip.All()))
	e.ln()
	e.do(report.Extremes(w, s.Extremes()))
	e.f("max oracle geomean speedup over baseline: %.2fx\n\n", analysis.MaxOracleGeoMean(d))

	e.do(printTable3(w, s))
	e.ln()
	e.do(printTable4(w, s))
	e.ln()

	e.do(report.Strategies(w))
	e.ln()
	e.do(report.OptSummary(w))
	e.ln()
	e.do(report.Apps(w, apps.All()))
	e.ln()
	e.do(printInputs(w))
	e.ln()

	e.do(report.ChipRecommendations(w, s.PerChip()))
	e.ln()
	e.do(printTableX(w))
	e.ln()

	e.do(report.Heatmap(w, s.Heatmap()))
	e.ln()
	e.do(report.FlagFrequencies(w, analysis.TopSpeedupOpts(d)))
	e.ln()

	evals, excluded := s.Evaluations()
	e.do(report.StrategyOutcomes(w, evals, excluded))
	e.ln()
	e.do(report.StrategySlowdowns(w, evals))
	e.ln()
	e.do(printFigure5(w))
	return e.err
}

func globalConfig(s *study.Study) analysis.ConfigRank {
	cfg := s.Global().Strategy.Config(dataset.Tuple{})
	for _, r := range s.Ranks() {
		if r.Config == cfg {
			return r
		}
	}
	// The global recommendation can be the baseline; report rank -1.
	return analysis.ConfigRank{Rank: -1, Config: cfg}
}

func printTable3(w io.Writer, s *study.Study) error {
	return report.ConfigRanks(w, s.Ranks(), globalConfig(s), len(s.Dataset().Tuples()))
}

func printTable4(w io.Writer, s *study.Study) error {
	d := s.Dataset()
	maxGeo := analysis.MaxGeoMeanConfig(s.Ranks())
	ours := globalConfig(s)
	return report.ChipCounts(w,
		maxGeo.Config, analysis.PerChipCounts(d, maxGeo.Config),
		ours.Config, analysis.PerChipCounts(d, ours.Config))
}

func printTable(w io.Writer, n int, loader func() (*study.Study, error)) error {
	switch n {
	case 1:
		return report.Chips(w, chip.All())
	case 5:
		return report.Strategies(w)
	case 6:
		return report.OptSummary(w)
	case 7:
		return report.Apps(w, apps.All())
	case 8:
		return printInputs(w)
	case 10:
		return printTableX(w)
	}
	s, err := loader()
	if err != nil {
		return err
	}
	switch n {
	case 2:
		return report.Extremes(w, s.Extremes())
	case 3:
		return printTable3(w, s)
	case 4:
		return printTable4(w, s)
	case 9:
		return report.ChipRecommendations(w, s.PerChip())
	default:
		return fmt.Errorf("no table %d (valid: 1-10)", n)
	}
}

func printFigure(w io.Writer, n int, loader func() (*study.Study, error)) error {
	if n == 5 {
		return printFigure5(w)
	}
	s, err := loader()
	if err != nil {
		return err
	}
	switch n {
	case 1:
		return report.Heatmap(w, s.Heatmap())
	case 2:
		return report.FlagFrequencies(w, analysis.TopSpeedupOpts(s.Dataset()))
	case 3:
		evals, excluded := s.Evaluations()
		return report.StrategyOutcomes(w, evals, excluded)
	case 4:
		evals, _ := s.Evaluations()
		return report.StrategySlowdowns(w, evals)
	default:
		return fmt.Errorf("no figure %d (valid: 1-5)", n)
	}
}

func printDecisions(w io.Writer, spec *analysis.Specialisation) {
	for _, p := range spec.Partitions {
		fmt.Fprintf(w, "partition %s -> %s\n", p.Key, p.Config)
		for _, dec := range p.Decisions {
			fmt.Fprintf(w, "  %-8s enabled=%-5v confident=%-5v p=%.4f CL=%.2f median=%.3f comparisons=%d\n",
				dec.Flag, dec.Enabled, dec.Confident, dec.P, dec.CL, dec.MedianRatio, dec.Comparisons)
		}
	}
}

func printInputs(w io.Writer) error {
	var props []graph.Properties
	for _, g := range graph.StandardInputs() {
		props = append(props, graph.Analyze(g))
	}
	return report.Inputs(w, props)
}

func printTableX(w io.Writer) error {
	sgcmb, mdivg := microbench.TableX(chip.All())
	t := report.NewTable("Table X: microbenchmark speedups per chip", "Bench", "M4000", "GTX1080", "HD5500", "IRIS", "R9", "MALI").
		RightAlign(1, 2, 3, 4, 5, 6)
	row := func(name string, sp []microbench.Speedup) {
		cells := []any{name}
		for _, s := range sp {
			cells = append(cells, report.F(s.Factor, 2))
		}
		t.Row(cells...)
	}
	row("sg-cmb", sgcmb)
	row("m-divg", mdivg)
	return t.Render(w)
}

func printFigure5(w io.Writer) error {
	sweep := microbench.Figure5Sweep()
	t := report.NewTable("Figure 5: GPU utilisation vs kernel duration (10000 launches + copies)",
		"Kernel (us)", "M4000", "GTX1080", "HD5500", "IRIS", "R9", "MALI").
		RightAlign(0, 1, 2, 3, 4, 5, 6)
	chips := chip.All()
	series := make([][]microbench.UtilisationPoint, len(chips))
	for i, ch := range chips {
		series[i] = microbench.LaunchOverhead(ch, sweep)
	}
	for pi, t0 := range sweep {
		cells := []any{report.F(t0/1000, 0)}
		for ci := range chips {
			cells = append(cells, report.F(series[ci][pi].Utilisation*100, 0)+"%")
		}
		t.Row(cells...)
	}
	return t.Render(w)
}
