package gpuport

// The benchmark harness: one benchmark per table and figure of the
// paper, regenerating the corresponding result and reporting its
// headline numbers as custom metrics, plus ablation benchmarks for the
// design choices called out in DESIGN.md.
//
// Run with: go test -bench=. -benchmem

import (
	"path/filepath"
	"sync"
	"testing"

	"gpuport/internal/analysis"
	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/cost"
	"gpuport/internal/cost/columnar"
	"gpuport/internal/dataset"
	"gpuport/internal/fault"
	"gpuport/internal/graph"
	"gpuport/internal/measure"
	"gpuport/internal/microbench"
	"gpuport/internal/obs"
	"gpuport/internal/opt"
	"gpuport/internal/staticlint"
	"gpuport/internal/stats"
	"gpuport/internal/study"
	"gpuport/internal/tracecache"
)

var (
	benchOnce  sync.Once
	benchStudy *study.Study
	benchErr   error
)

func sharedStudy(b *testing.B) *study.Study {
	b.Helper()
	benchOnce.Do(func() { benchStudy, benchErr = study.Default() })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

// BenchmarkDatasetCollection measures the full experiment sweep:
// 51 application traces expanded into 29,376 measured cells.
func BenchmarkDatasetCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := measure.Collect(measure.Options{Seed: 42, Runs: 3})
		if err != nil {
			b.Fatal(err)
		}
		if d.Len() == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkTable1 regenerates the chip registry (trivially cheap; kept
// so every table has its bench target).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(chip.All()) != 6 {
			b.Fatal("chip registry broken")
		}
	}
}

// BenchmarkTable2 regenerates the per-chip extreme effects.
func BenchmarkTable2(b *testing.B) {
	d := sharedStudy(b).Dataset()
	b.ResetTimer()
	var maxSpeed, maxSlow float64
	for i := 0; i < b.N; i++ {
		for _, e := range analysis.Extremes(d) {
			if e.MaxSpeedup > maxSpeed {
				maxSpeed = e.MaxSpeedup
			}
			if e.MaxSlowdown > maxSlow {
				maxSlow = e.MaxSlowdown
			}
		}
	}
	b.ReportMetric(maxSpeed, "max-speedup-x")
	b.ReportMetric(maxSlow, "max-slowdown-x")
}

// BenchmarkTable3 regenerates the global configuration ranking.
func BenchmarkTable3(b *testing.B) {
	d := sharedStudy(b).Dataset()
	b.ResetTimer()
	var top float64
	for i := 0; i < b.N; i++ {
		ranks := analysis.RankConfigs(d)
		top = analysis.MaxGeoMeanConfig(ranks).GeoMean
	}
	b.ReportMetric(top, "best-geomean")
}

// BenchmarkTable4 regenerates the per-chip bias breakdown.
func BenchmarkTable4(b *testing.B) {
	s := sharedStudy(b)
	cfg := analysis.MaxGeoMeanConfig(s.Ranks()).Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.PerChipCounts(s.Dataset(), cfg)) != 6 {
			b.Fatal("missing chips")
		}
	}
}

// BenchmarkTable9 regenerates the chip-specialised recommendations
// (Algorithm 1 over six chip partitions).
func BenchmarkTable9(b *testing.B) {
	d := sharedStudy(b).Dataset()
	b.ResetTimer()
	var enabled int
	for i := 0; i < b.N; i++ {
		spec := analysis.Specialise(d, analysis.Dims{Chip: true})
		enabled = 0
		for _, p := range spec.Partitions {
			for _, dec := range p.Decisions {
				if dec.Enabled {
					enabled++
				}
			}
		}
	}
	b.ReportMetric(float64(enabled), "flags-enabled")
}

// BenchmarkTableX regenerates the two microbenchmark rows.
func BenchmarkTableX(b *testing.B) {
	var r9, mali float64
	for i := 0; i < b.N; i++ {
		sgcmb, mdivg := microbench.TableX(chip.All())
		for _, s := range sgcmb {
			if s.Chip == chip.R9 {
				r9 = s.Factor
			}
		}
		for _, s := range mdivg {
			if s.Chip == chip.MALI {
				mali = s.Factor
			}
		}
	}
	b.ReportMetric(r9, "sgcmb-R9-x")
	b.ReportMetric(mali, "mdivg-MALI-x")
}

// BenchmarkFigure1 regenerates the cross-chip portability heatmap.
func BenchmarkFigure1(b *testing.B) {
	d := sharedStudy(b).Dataset()
	b.ResetTimer()
	var worstCol float64
	for i := 0; i < b.N; i++ {
		h := analysis.CrossChipHeatmap(d)
		worstCol = 0
		for _, v := range h.ColMeanOffDiag {
			if v > worstCol {
				worstCol = v
			}
		}
	}
	b.ReportMetric(worstCol, "worst-col-geomean")
}

// BenchmarkFigure2 regenerates the per-chip top-speedup flag counts.
func BenchmarkFigure2(b *testing.B) {
	d := sharedStudy(b).Dataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.TopSpeedupOpts(d)) != 6 {
			b.Fatal("missing chips")
		}
	}
}

// BenchmarkFigure3And4 regenerates the strategy evaluations (both
// figures come from the same computation).
func BenchmarkFigure3And4(b *testing.B) {
	d := sharedStudy(b).Dataset()
	strategies := analysis.StandardStrategies(d)
	b.ResetTimer()
	var globalVsOracle float64
	for i := 0; i < b.N; i++ {
		evals, _ := analysis.EvaluateAll(d, strategies)
		for _, e := range evals {
			if e.Name == "global" {
				globalVsOracle = e.GeoMeanSlowdownVsOracle
			}
		}
	}
	b.ReportMetric(globalVsOracle, "global-vs-oracle")
}

// BenchmarkFigure5 regenerates the launch-overhead utilisation sweep.
func BenchmarkFigure5(b *testing.B) {
	sweep := microbench.Figure5Sweep()
	var nvidiaAt10us float64
	for i := 0; i < b.N; i++ {
		for _, ch := range chip.All() {
			pts := microbench.LaunchOverhead(ch, sweep)
			if ch.Name == chip.GTX1080 {
				nvidiaAt10us = pts[2].Utilisation
			}
		}
	}
	b.ReportMetric(nvidiaAt10us*100, "gtx1080-util-pct-at-10us")
}

// BenchmarkAlgorithm1AllSpecialisations runs Algorithm 1 at every
// degree of specialisation (the full Section VII computation).
func BenchmarkAlgorithm1AllSpecialisations(b *testing.B) {
	d := sharedStudy(b).Dataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dims := range analysis.AllDims() {
			analysis.Specialise(d, dims)
		}
	}
}

// BenchmarkCollectFaultOverhead guards the zero-overhead claim of the
// fault-injected collect path: the same small sweep with (a) no fault
// layer, (b) the fault layer enabled at zero rates, and (c) realistic
// light fault rates. (a) and (b) must be within noise of each other -
// the zero-rate layer adds only one keyed RNG draw per cell - and (b)
// is bit-identical to (a) by TestZeroRateFaultsBitIdentical.
func BenchmarkCollectFaultOverhead(b *testing.B) {
	bfs, _ := apps.ByName("bfs-wl")
	pr, _ := apps.ByName("pr-residual")
	base := measure.Options{
		Seed:   7,
		Runs:   3,
		Chips:  chip.All()[:2],
		Apps:   []apps.App{bfs, pr},
		Inputs: []*graph.Graph{graph.GenerateUniform("bench-fault", 600, 5, 9)},
	}
	collect := func(b *testing.B, o measure.Options) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			d, err := measure.Collect(o)
			if err != nil {
				b.Fatal(err)
			}
			if d.Len() == 0 {
				b.Fatal("empty dataset")
			}
		}
	}
	b.Run("no-fault-layer", func(b *testing.B) { collect(b, base) })
	b.Run("zero-rate-faults", func(b *testing.B) {
		o := base
		o.Faults = &fault.Profile{Seed: 1}
		collect(b, o)
	})
	b.Run("light-faults", func(b *testing.B) {
		o := base
		o.Faults = fault.Light()
		collect(b, o)
	})
}

// --- trace pipeline benchmarks: serial vs parallel vs cached ---
//
// All three run the standard app x input matrix (17 x 3 = 51 traces),
// the exact workload every campaign pays before the sweep can start.
// The speedup claims (parallel >= 2x at 4 workers, cached >= 10x over
// cold) are enforced by cmd/benchcheck via `make bench-trace`, which
// records the results in BENCH_trace.json.

func benchTraces(b *testing.B, o measure.Options) {
	b.Helper()
	// Campaigns generate their inputs once per process; the benchmark
	// measures the trace pipeline itself, not graph generation.
	if o.Inputs == nil {
		o.Inputs = graph.StandardInputs()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profiles, err := measure.Traces(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(profiles) != 51 {
			b.Fatalf("profiles = %d, want 51", len(profiles))
		}
	}
	b.ReportMetric(51, "traces")
}

// BenchmarkTraces is the serial baseline: one worker, no cache (the
// pre-pipeline harness behaviour).
func BenchmarkTraces(b *testing.B) {
	benchTraces(b, measure.Options{Workers: 1})
}

// BenchmarkTracesParallel runs the same matrix on a 4-worker pool.
// The >= 2x speedup claim needs real cores; cmd/benchcheck only
// enforces it when the recording machine had GOMAXPROCS >= 4.
func BenchmarkTracesParallel(b *testing.B) {
	benchTraces(b, measure.Options{Workers: 4})
}

// BenchmarkTracesCached runs the matrix against a fully warm trace
// cache: every pair short-circuits to a verified read of its cached
// trace.
func BenchmarkTracesCached(b *testing.B) {
	store, err := tracecache.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	o := measure.Options{Workers: 1, TraceCache: store, Inputs: graph.StandardInputs()}
	if _, err := measure.Traces(o); err != nil { // warm the cache
		b.Fatal(err)
	}
	benchTraces(b, o)
	if st := store.Stats(); st.Hits == 0 {
		b.Fatal("cached benchmark never hit the cache")
	}
}

// --- workload generators: one bench per application per input class ---

func benchApp(b *testing.B, name string, g *graph.Graph) {
	app, err := apps.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		tr, _ := app.Run(g)
		edges = tr.TotalEdgeWork()
	}
	b.ReportMetric(float64(edges), "edge-work")
}

func BenchmarkAppsOnRoad(b *testing.B) {
	g := graph.GenerateRoad("bench-road", 48, 1)
	for _, app := range apps.All() {
		b.Run(app.Name, func(b *testing.B) { benchApp(b, app.Name, g) })
	}
}

func BenchmarkAppsOnSocial(b *testing.B) {
	g := graph.GenerateRMAT("bench-rmat", 11, 16, 2)
	for _, app := range apps.All() {
		b.Run(app.Name, func(b *testing.B) { benchApp(b, app.Name, g) })
	}
}

// BenchmarkCostModel measures per-launch cost evaluation throughput.
func BenchmarkCostModel(b *testing.B) {
	g := graph.GenerateRMAT("bench-cost", 10, 8, 3)
	app, _ := apps.ByName("bfs-wl")
	tr, _ := app.Run(g)
	tp := cost.NewTraceProfile(tr)
	chips := chip.All()
	cfgs := opt.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := chips[i%len(chips)]
		cfg := cfgs[i%len(cfgs)]
		if cost.Estimate(ch, cfg, tp) <= 0 {
			b.Fatal("bad estimate")
		}
	}
}

// BenchmarkMWU measures the core statistical test.
func BenchmarkMWU(b *testing.B) {
	rng := stats.NewRNG(1)
	a := make([]float64, 500)
	bb := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		bb[i] = rng.NormFloat64() + 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.MannWhitneyU(a, bb)
	}
}

// BenchmarkSamplingCurve runs the Section IX subsampling experiment at
// 30% sampling, reporting the recommendation agreement it achieves.
func BenchmarkSamplingCurve(b *testing.B) {
	d := sharedStudy(b).Dataset()
	b.ResetTimer()
	var agree float64
	for i := 0; i < b.N; i++ {
		pts := analysis.SamplingCurve(d, analysis.Dims{Chip: true}, []float64{0.3}, 3, 7)
		agree = pts[0].MeanAgreement
	}
	b.ReportMetric(agree*100, "agreement-pct-at-30pct-sample")
}

// BenchmarkCrossValidate runs leave-one-chip-out prediction, reporting
// the mean gap to the oracle for unseen hardware.
func BenchmarkCrossValidate(b *testing.B) {
	d := sharedStudy(b).Dataset()
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		results := analysis.CrossValidate(d, analysis.LOOChip)
		sum := 0.0
		for _, r := range results {
			sum += r.Eval.GeoMeanSlowdownVsOracle
		}
		mean = sum / float64(len(results))
	}
	b.ReportMetric(mean, "unseen-chip-vs-oracle")
}

// --- ablation benchmarks: design choices of DESIGN.md section 5 ---

// BenchmarkAblationMagnitudeVsRank contrasts the paper's rank-based
// global pick against the flawed maximise-geomean policy, reporting the
// worst per-chip slowdown count each incurs (the Table IV bias).
func BenchmarkAblationMagnitudeVsRank(b *testing.B) {
	s := sharedStudy(b)
	d := s.Dataset()
	var rankWorst, magWorst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rankCfg := s.Global().Strategy.Config(dataset.Tuple{})
		magCfg := analysis.MaxGeoMeanConfig(s.Ranks()).Config
		rankWorst, magWorst = 0, 0
		for _, cc := range analysis.PerChipCounts(d, rankCfg) {
			if float64(cc.Slowdowns) > rankWorst {
				rankWorst = float64(cc.Slowdowns)
			}
		}
		for _, cc := range analysis.PerChipCounts(d, magCfg) {
			if float64(cc.Slowdowns) > magWorst {
				magWorst = float64(cc.Slowdowns)
			}
		}
	}
	b.ReportMetric(rankWorst, "rank-pick-worst-chip-slowdowns")
	b.ReportMetric(magWorst, "magnitude-pick-worst-chip-slowdowns")
}

// BenchmarkAblationSignificanceGate contrasts Algorithm 1 with and
// without the 95% CI significance gate, reporting how many of the 42
// per-chip flag decisions flip when raw (ungated) ratios feed the MWU
// test. A non-zero flip count is the reason the gate exists.
func BenchmarkAblationSignificanceGate(b *testing.B) {
	d := sharedStudy(b).Dataset()
	var flips float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gated := analysis.Specialise(d, analysis.Dims{Chip: true})
		ungated := analysis.SpecialiseUngated(d, analysis.Dims{Chip: true})
		flips = 0
		for p := range gated.Partitions {
			for f := range gated.Partitions[p].Decisions {
				if gated.Partitions[p].Decisions[f].Enabled != ungated.Partitions[p].Decisions[f].Enabled {
					flips++
				}
			}
		}
	}
	b.ReportMetric(flips, "decision-flips")
}

// BenchmarkAblationTraceReuse contrasts the trace-driven design (trace
// once per app/input, evaluate 96 configs against it) with what a
// näive per-config re-execution would cost, using one application.
func BenchmarkAblationTraceReuse(b *testing.B) {
	g := graph.GenerateRMAT("bench-reuse", 10, 8, 4)
	app, _ := apps.ByName("sssp-nf")
	chips := chip.All()
	b.Run("trace-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, _ := app.Run(g)
			tp := cost.NewTraceProfile(tr)
			for _, ch := range chips {
				for _, cfg := range opt.All() {
					cost.Estimate(ch, cfg, tp)
				}
			}
		}
	})
	b.Run("retrace-per-config", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// One re-execution per configuration (single chip to keep
			// the benchmark affordable; the full factor is 6x larger).
			for range opt.All() {
				tr, _ := app.Run(g)
				tp := cost.NewTraceProfile(tr)
				cost.Estimate(chips[0], opt.Config{}, tp)
			}
		}
	})
}

// --- columnar cost engine: the bound behind `make bench-cost` ---
//
// Both sweep benchmarks evaluate the same grid - every (app, input)
// profile x 6 chips x 96 configs, the per-trace unit of work of a
// collection campaign - single-threaded. The columnar run pays its
// full pipeline inside the timer (Build + per-chip NewEvaluator +
// per-config assembly), so the measured ratio is the end-to-end sweep
// speedup, not a cherry-picked inner loop. cmd/benchcheck enforces
// >= 10x via `make bench-cost`, recorded in BENCH_cost.json.

// sweepProfiles builds the traces the sweep benchmarks replay: three
// structurally different applications on an RMAT social graph.
func sweepProfiles(b *testing.B) []*cost.TraceProfile {
	b.Helper()
	g := graph.GenerateRMAT("bench-sweep", 11, 16, 5)
	var out []*cost.TraceProfile
	for _, name := range []string{"bfs-wl", "sssp-nf", "pr-residual"} {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		tr, _ := app.Run(g)
		out = append(out, cost.NewTraceProfile(tr))
	}
	return out
}

// BenchmarkSweepReference sweeps the grid through the reference engine
// (cost.Estimate per cell, as the harness ran before the columnar
// engine existed).
func BenchmarkSweepReference(b *testing.B) {
	profiles := sweepProfiles(b)
	chips := chip.All()
	cfgs := opt.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := 0.0
		for _, tp := range profiles {
			for _, ch := range chips {
				for _, cfg := range cfgs {
					sink += cost.Estimate(ch, cfg, tp)
				}
			}
		}
		if sink <= 0 {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkSweepColumnar sweeps the same grid through the columnar
// engine, rebuilding columns and evaluators inside the timer.
func BenchmarkSweepColumnar(b *testing.B) {
	profiles := sweepProfiles(b)
	chips := chip.All()
	cfgs := opt.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := 0.0
		for _, tp := range profiles {
			cols := columnar.Build(tp)
			for _, ch := range chips {
				ev := columnar.NewEvaluator(ch, cols)
				for _, cfg := range cfgs {
					sink += ev.Estimate(cfg)
				}
			}
		}
		if sink <= 0 {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkColumnarBuild isolates the config-invariant precompute; the
// max-ratio gate bounds it to a fraction of the columnar sweep so the
// build phase can never quietly grow into a second bottleneck.
func BenchmarkColumnarBuild(b *testing.B) {
	profiles := sweepProfiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tp := range profiles {
			if columnar.Build(tp).Launches() == 0 {
				b.Fatal("empty columns")
			}
		}
	}
}

// --- observability overhead: the bound behind `make bench-obs` ---

// --- static analysis engine: the staticgate CI gate's cost ---

// BenchmarkStaticgate measures the whole-program analysis engine over
// the staticlint fixture module, end to end: parallel parse,
// GOMAXPROCS-wave type-checking, and all analyzers (including the
// interprocedural lock-set and lock-order passes). This is the unit of
// work `make staticgate` pays per package tree, so its record in
// BENCH_ci.json is what catches a loader or analyzer slowdown.
func BenchmarkStaticgate(b *testing.B) {
	root := filepath.Join("internal", "staticlint", "testdata", "src", "fixture")
	analyzers := staticlint.Analyzers()
	cfg := staticlint.DefaultConfig()
	var findings int
	for i := 0; i < b.N; i++ {
		prog, err := staticlint.Load(root)
		if err != nil {
			b.Fatal(err)
		}
		res := staticlint.Run(prog, cfg, analyzers)
		findings = len(res.Diagnostics)
	}
	b.ReportMetric(float64(findings), "findings")
}

// BenchmarkSpanOverhead guards the observability overhead claim: full
// span capture plus the simulated kernel timeline (EnableSim, what
// -obs-trace turns on) must stay within 1.5x of the always-on
// stage/counter layer on the trace pipeline. The bound is enforced by
// cmd/benchcheck via `make bench-obs`, recorded in BENCH_obs.json.
// Spans are the expensive tier - each kernel launch becomes a sim
// span - so this is the worst case for the instrumentation.
func BenchmarkSpanOverhead(b *testing.B) {
	bfs, _ := apps.ByName("bfs-wl")
	pr, _ := apps.ByName("pr-residual")
	base := measure.Options{
		Workers: 4,
		Apps:    []apps.App{bfs, pr},
		Inputs:  []*graph.Graph{graph.GenerateUniform("bench-obs", 600, 5, 9)},
	}
	runTraces := func(b *testing.B, mk func() *obs.Recorder) {
		b.Helper()
		var spans int
		for i := 0; i < b.N; i++ {
			o := base
			o.Obs = mk()
			if _, err := measure.Traces(o); err != nil {
				b.Fatal(err)
			}
			spans = len(o.Obs.Snapshot().Spans)
		}
		b.ReportMetric(float64(spans), "spans")
	}
	b.Run("stages-only", func(b *testing.B) {
		runTraces(b, func() *obs.Recorder { return obs.New() })
	})
	b.Run("spans-sim", func(b *testing.B) {
		runTraces(b, func() *obs.Recorder { return obs.New().EnableSim() })
	})
}
