// Chip insights: reproduce Section VIII of the paper - dissecting
// chip-specialised optimisation choices and explaining them with
// microbenchmarks.
//
// The example runs the full study, prints the per-chip recommendation
// table (Table IX), then uses the three microbenchmarks to explain the
// three findings the paper highlights:
//
//  1. why the Nvidia chips do not enable oitergb (kernel launches are
//     too cheap for outlining to pay) - Figure 5;
//  2. why only R9 and IRIS enable coop-cv (their JITs do not combine
//     subgroup atomics and their RMW units are slow) - sg-cmb;
//  3. why MALI enables sg despite having no physical subgroups (the
//     gratuitous barrier tames intra-workgroup memory divergence) -
//     m-divg.
//
// Run with: go run ./examples/chipinsights
package main

import (
	"fmt"
	"log"
	"os"

	"gpuport"
	"gpuport/internal/chip"
	"gpuport/internal/opt"
	"gpuport/internal/report"
)

func main() {
	s, err := gpuport.DefaultStudy()
	if err != nil {
		log.Fatal(err)
	}

	spec := s.PerChip()
	report.ChipRecommendations(os.Stdout, spec)

	// Finding 1: oitergb and launch overhead.
	fmt.Println("\n-- Finding 1: kernel launch overhead (Figure 5) --")
	fmt.Println("utilisation with 10us kernels (10000 launches + copies):")
	enabled := map[string]bool{}
	for _, p := range spec.Partitions {
		for _, dec := range p.Decisions {
			if dec.Flag == opt.FlagOiterGB {
				enabled[p.Key.Chip] = dec.Enabled
			}
		}
	}
	for _, ch := range gpuport.Chips() {
		pts := gpuport.LaunchOverhead(ch, []float64{10000})
		mark := "oitergb not recommended"
		if enabled[ch.Name] {
			mark = "oitergb recommended"
		}
		fmt.Printf("  %-8s %5.1f%% utilisation -> %s\n", ch.Name, pts[0].Utilisation*100, mark)
	}
	fmt.Println("the chips that keep high utilisation without help are exactly the ones")
	fmt.Println("that skip iteration outlining.")

	// Finding 2: coop-cv and atomic combining.
	fmt.Println("\n-- Finding 2: subgroup atomic combining (Table X, sg-cmb) --")
	sgcmb, mdivg := gpuport.TableX(gpuport.Chips())
	for _, sp := range sgcmb {
		ch, _ := chip.ByName(sp.Chip)
		why := "JIT already combines"
		if !ch.JITCombinesAtomics {
			why = "no JIT combining"
			if ch.SubgroupSize == 1 {
				why = "no subgroups to combine over"
			}
		}
		fmt.Printf("  %-8s manual combining speedup %6.2fx (%s)\n", sp.Chip, sp.Factor, why)
	}

	// Finding 3: MALI and memory divergence.
	fmt.Println("\n-- Finding 3: intra-workgroup memory divergence (Table X, m-divg) --")
	for _, sp := range mdivg {
		fmt.Printf("  %-8s gratuitous barrier speedup %5.2fx\n", sp.Chip, sp.Factor)
	}
	fmt.Println("every chip benefits mildly from keeping the workgroup in step; MALI's")
	fmt.Println("tiny caches make it pathological, which is why its strategy enables sg")
	fmt.Println("even though its subgroups are trivial.")
}
