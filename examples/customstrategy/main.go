// Custom strategy: use the library on an environment the paper never
// measured - a hypothetical ninth-generation integrated GPU and a
// user-supplied input - and derive an optimisation policy for it.
//
// This demonstrates the intended downstream workflow:
//
//  1. describe a new chip by its performance parameters,
//  2. bring your own graph input,
//  3. collect a dataset over the applications you care about,
//  4. let the rank-based analysis pick your compiler flags,
//  5. persist the dataset as CSV for later re-analysis.
//
// Run with: go run ./examples/customstrategy
package main

import (
	"bytes"
	"fmt"
	"log"

	"gpuport"
	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/graph"
	"gpuport/internal/measure"
)

func main() {
	// 1. A hypothetical integrated GPU: middling launch overhead, wide
	// subgroups, no JIT atomic combining, moderate divergence
	// sensitivity. All parameters are plain struct fields.
	custom := chip.Chip{
		Name: "iGPU9", Vendor: "Acme", Arch: "Gen9", OS: "Linux",
		CUs: 16, SubgroupSize: 32, Discrete: false,
		LaunchNS: 18000, CopyNS: 6000, GlobalBarrierNS: 4200, GBOccupancyPenalty: 1.1,
		EdgeThroughput: 1.1, ItemOverheadNS: 0.9,
		AtomicNS: 14, AtomicDataNS: 4,
		JITCombinesAtomics: false, CombineEfficiency: 0.45, CoopOverheadNS: 3,
		SubgroupBarrierNS: 2, WorkgroupBarrierNS: 35, WGBarrier256Factor: 2.4,
		FG1CostPerEdge: 0.9, FG8CostPerEdge: 0.3,
		LineFetchNS: 32, CacheLinesPerCU: 6,
		LocalMemNS: 1.2, DivergencePenaltyNS: 1.4, BarrierDivergenceRelief: 0.35,
		Occupancy256: 0.95, MaxWorkgroup: 256, NoiseSigma: 0.03,
	}

	// 2. Your own input: a mid-size power-law graph.
	input := graph.GenerateRMAT("my-graph", 12, 12, 4242)
	props := graph.Analyze(input)
	fmt.Printf("input %s: %d nodes, %d edges, max degree %d, ~diameter %d\n\n",
		props.Name, props.Nodes, props.Edges, props.MaxDegree, props.ApproxDiam)

	// 3. Collect over the applications that matter to you.
	var selected []gpuport.App
	for _, name := range []string{"bfs-hybrid", "sssp-nf", "pr-residual", "cc-sv", "tri-merge"} {
		app, err := apps.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		selected = append(selected, app)
	}
	s, err := gpuport.NewStudy(measure.Options{
		Seed:     99,
		Runs:     3,
		Chips:    []chip.Chip{custom},
		Apps:     selected,
		Inputs:   []*graph.Graph{input},
		Validate: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Derive the policy. With a single chip and input, the "global"
	// strategy is the chip-and-input-specialised one.
	spec := s.Global()
	fmt.Println("recommended compiler flags for iGPU9 on my-graph:")
	fmt.Printf("  %s\n\n", spec.Strategy.Config(gpuport.Tuple{}))
	for _, dec := range spec.Partitions[0].Decisions {
		state := "off"
		switch {
		case !dec.Confident:
			state = "undecided (too few significant samples)"
		case dec.Enabled:
			state = "ON"
		}
		fmt.Printf("  %-8s %-40s P(speedup)=%.2f\n", dec.Flag, state, dec.CL)
	}

	// Per-application nuance: the app-specialised strategies.
	fmt.Println("\nper-application recommendations:")
	for _, p := range s.Specialise(gpuport.Dims{App: true}).Partitions {
		fmt.Printf("  %-12s -> %s\n", p.Key.App, p.Config)
	}

	// 5. Persist and reload the dataset.
	var buf bytes.Buffer
	if err := s.Dataset().WriteCSV(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	reloaded, err := gpuport.ReadDatasetCSV(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndataset round-tripped through CSV: %d records, %d bytes\n",
		reloaded.Len(), size)
}
