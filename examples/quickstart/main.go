// Quickstart: collect a small study and derive a portable optimisation
// strategy for it.
//
// This example restricts the sweep to two chips, three applications and
// one input so it finishes in well under a second, then runs the
// paper's rank-based analysis (Algorithm 1) on the collected data and
// prints the flag decisions with their statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpuport"
	"gpuport/internal/apps"
	"gpuport/internal/graph"
)

func main() {
	// 1. Pick a slice of the study space.
	chips := gpuport.Chips()[:2] // M4000 and GTX1080
	var selected []gpuport.App
	for _, name := range []string{"bfs-wl", "sssp-nf", "pr-residual"} {
		app, err := apps.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		selected = append(selected, app)
	}
	input := graph.GenerateRoad("mini-road", 60, 7)

	// 2. Collect the dataset: every (chip, app, input, configuration)
	// cell is timed three times by the performance model.
	s, err := gpuport.NewStudy(gpuport.Options{
		Seed:   1,
		Runs:   3,
		Chips:  chips,
		Apps:   selected,
		Inputs: []*gpuport.Graph{input},
		// Validate every application against its reference while
		// tracing - the harness refuses to time wrong answers.
		Validate: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d records over %d tests\n\n",
		s.Dataset().Len(), len(s.Dataset().Tuples()))

	// 3. Derive the fully-portable strategy and inspect the decisions.
	global := s.Global()
	fmt.Println("portable (global) recommendation:", global.Strategy.Config(gpuport.Tuple{}))
	for _, dec := range global.Partitions[0].Decisions {
		verdict := "off"
		if dec.Enabled {
			verdict = "ON"
		}
		if !dec.Confident {
			verdict = "undecided"
		}
		fmt.Printf("  %-8s %-9s  p=%.3f  effect-size=%.2f  median-ratio=%.3f  (%d significant pairs)\n",
			dec.Flag, verdict, dec.P, dec.CL, dec.MedianRatio, dec.Comparisons)
	}

	// 4. Compare against per-chip specialisation.
	fmt.Println("\nper-chip recommendations:")
	for _, p := range s.PerChip().Partitions {
		fmt.Printf("  %-8s -> %s\n", p.Key.Chip, p.Config)
	}

	// 5. How much performance does portability cost here?
	evals, excluded := s.Evaluations()
	fmt.Printf("\nstrategy scores (%d non-improvable tests excluded):\n", excluded)
	for _, e := range evals {
		switch e.Name {
		case "baseline", "global", "chip", "oracle":
			fmt.Printf("  %-8s  %.2fx vs baseline, %.2fx behind oracle, %d/%d tests sped up\n",
				e.Name, e.GeoMeanVsBaseline, e.GeoMeanSlowdownVsOracle, e.Speedups, e.Tests())
		}
	}
}
