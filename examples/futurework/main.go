// Future work: run the two experiments Section IX of the paper sketches
// but does not evaluate.
//
//  1. Sampling sufficiency - the paper used exhaustive data (every
//     configuration on every test); how much of the domain must be
//     measured before the recommendations stabilise?
//  2. Prediction - the paper's models are descriptive; how well does a
//     strategy derived *without* a given application / input / chip
//     perform when that environment shows up later?
//
// Run with: go run ./examples/futurework
package main

import (
	"fmt"
	"log"
	"os"

	"gpuport"
	"gpuport/internal/analysis"
	"gpuport/internal/report"
)

func main() {
	s, err := gpuport.DefaultStudy()
	if err != nil {
		log.Fatal(err)
	}

	// Experiment 1: subsample the 306 tests at increasing rates and
	// measure how much of the full-data chip recommendation survives.
	fmt.Println("== Experiment 1: how much measurement is enough? ==")
	fractions := []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0}
	pts := s.SamplingCurve(gpuport.Dims{Chip: true}, fractions, 8, 2026)
	report.SamplingCurve(os.Stdout, gpuport.Dims{Chip: true}, pts)
	for _, p := range pts {
		if p.MeanAgreement >= 0.95 {
			fmt.Printf("-> measuring ~%.0f%% of the domain already reproduces 95%%+ of the\n"+
				"   full-data recommendations; exhaustive sweeps are mostly confirmation.\n\n",
				p.Fraction*100)
			break
		}
	}

	// Experiment 2: leave-one-out prediction across all three
	// dimensions. The gap to the oracle is the price of never having
	// seen the held-out environment.
	fmt.Println("== Experiment 2: predicting unseen environments ==")
	type dimScore struct {
		name  string
		worst analysis.LOOResult
		mean  float64
	}
	var scores []dimScore
	for _, dim := range []analysis.LOODimension{analysis.LOOApp, analysis.LOOInput, analysis.LOOChip} {
		results := s.CrossValidate(dim)
		report.CrossValidation(os.Stdout, dim.String(), results)
		worst := results[0]
		sum := 0.0
		for _, r := range results {
			sum += r.Eval.GeoMeanSlowdownVsOracle
			if r.Eval.GeoMeanSlowdownVsOracle > worst.Eval.GeoMeanSlowdownVsOracle {
				worst = r
			}
		}
		scores = append(scores, dimScore{dim.String(), worst, sum / float64(len(results))})
		fmt.Printf("-> hardest to predict: %s (%.2fx behind its oracle)\n\n",
			worst.Held, worst.Eval.GeoMeanSlowdownVsOracle)
	}
	fmt.Println("average gap to the oracle when the environment was never seen:")
	hardest := scores[0]
	for _, sc := range scores {
		fmt.Printf("  unseen %-6s %.3fx (worst single case: %s, %.2fx)\n",
			sc.name, sc.mean, sc.worst.Held, sc.worst.Eval.GeoMeanSlowdownVsOracle)
		if sc.mean > hardest.mean {
			hardest = sc
		}
	}
	fmt.Printf("\nleast transferable dimension on this dataset: %s.\n", hardest.name)
	fmt.Println("(inputs and chips trade places depending on the domain - the paper's")
	fmt.Println("related work notes input effects can swamp platform tuning, while its")
	fmt.Println("own headline result is that chips are an independent dimension; the")
	fmt.Println("leave-one-out gaps quantify both.)")
}
