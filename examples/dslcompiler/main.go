// DSL compiler: the paper's system is a DSL compiler whose optimisation
// space this study explores. This example walks the compiler pipeline:
//
//  1. write a new algorithm in the IrGL-like DSL (reachability count),
//  2. compile and execute it on a real input, validating the answer,
//  3. model its runtime on every chip under the portable configuration
//     the study recommends,
//  4. emit the OpenCL the compiler would generate for two contrasting
//     configurations, showing how the optimisations rewrite the kernel.
//
// Run with: go run ./examples/dslcompiler
package main

import (
	"fmt"
	"log"
	"strings"

	"gpuport"
	"gpuport/internal/chip"
	"gpuport/internal/cost"
	"gpuport/internal/graph"
	"gpuport/internal/opt"
)

// A program the library does not ship: mark every node reachable from
// the source and count hops like BFS, but also tally how many times
// each node was relaxed (a simple provenance counter).
const source = `program reach

node dist:  int = INF
node hits:  int

host {
    dist[SRC] = 0
    push(SRC)
    iterate relax
}

kernel relax {
    forall u in worklist {
        let du = dist[u]
        foreach (v, w) in edges(u) {
            hits[v] = hits[v] + 1
            if atomicMin(dist[v], du + 1) {
                push(v)
            }
        }
    }
}
`

func main() {
	exe, err := gpuport.CompileDSL(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled custom DSL program 'reach'")

	g, err := graph.InputByName("usa.ny")
	if err != nil {
		log.Fatal(err)
	}
	trace, arrays, err := exe.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	dist := arrays["dist"]
	reached := 0
	for _, d := range dist {
		if int64(d) != 1<<30-1 {
			reached++
		}
	}
	fmt.Printf("ran on %s: reached %d of %d nodes in %d kernel launches\n\n",
		g.Name, reached, g.NumNodes(), trace.TotalLaunches())

	// Model the runtime under the study's portable recommendation.
	portable, _ := opt.Parse("sg,fg8,oitergb")
	tp := cost.NewTraceProfile(trace)
	fmt.Println("modelled speedup of the portable configuration {sg,fg8,oitergb}:")
	for _, ch := range chip.All() {
		base := cost.Estimate(ch, opt.Config{}, tp)
		tuned := cost.Estimate(ch, portable, tp)
		fmt.Printf("  %-8s %5.2fx\n", ch.Name, base/tuned)
	}

	// Show how two configurations rewrite the generated kernel.
	fmt.Println("\n--- generated OpenCL, baseline (excerpt) ---")
	printExcerpt(gpuport.GenerateOpenCL(exe, opt.Config{}))
	fmt.Println("\n--- generated OpenCL, coop-cv,sg,fg8,oitergb (excerpt) ---")
	full, _ := opt.Parse("coop-cv,sg,fg8,oitergb")
	printExcerpt(gpuport.GenerateOpenCL(exe, full))
}

// printExcerpt shows the kernel body without drowning the terminal.
func printExcerpt(src string) {
	lines := strings.Split(src, "\n")
	start := 0
	for i, l := range lines {
		if strings.Contains(l, "__kernel") {
			start = i
			break
		}
	}
	end := start + 24
	if end > len(lines) {
		end = len(lines)
	}
	for _, l := range lines[start:end] {
		fmt.Println(l)
	}
	if end < len(lines) {
		fmt.Println("    ...")
	}
}
