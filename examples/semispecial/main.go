// Semi-specialisation: reproduce Section VII of the paper - quantify
// the performance trade-off as portability is exchanged for
// specialisation over the three dimensions (chip, application, input).
//
// Run with: go run ./examples/semispecial
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"gpuport"
	"gpuport/internal/report"
)

func main() {
	s, err := gpuport.DefaultStudy()
	if err != nil {
		log.Fatal(err)
	}

	evals, excluded := s.Evaluations()
	report.StrategyOutcomes(os.Stdout, evals, excluded)
	fmt.Println()
	report.StrategySlowdowns(os.Stdout, evals)

	// Rank the eight real specialisations by how close they come to
	// the oracle.
	type row struct {
		name string
		vs   float64
		dims int
	}
	var rows []row
	for _, e := range evals {
		if e.Name == "baseline" || e.Name == "oracle" {
			continue
		}
		dims := 0
		for _, d := range gpuport.AllDims() {
			if d.Name() == e.Name {
				dims = d.Count()
			}
		}
		rows = append(rows, row{e.Name, e.GeoMeanSlowdownVsOracle, dims})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].vs < rows[j].vs })

	fmt.Println("\nspecialisations ranked by closeness to the oracle:")
	for i, r := range rows {
		fmt.Printf("  %d. %-15s %.3fx behind oracle (%d dimension(s) specialised)\n",
			i+1, r.name, r.vs, r.dims)
	}

	// The paper's headline: how much do you lose by shipping one
	// portable configuration instead of autotuning everything?
	byName := map[string]gpuport.StrategyEval{}
	for _, e := range evals {
		byName[e.Name] = e
	}
	fmt.Printf("\nfully portable vs never optimising:   %.2fx better\n",
		byName["global"].GeoMeanVsBaseline)
	fmt.Printf("fully portable vs full specialisation: %.2fx left on the table\n",
		byName["global"].GeoMeanSlowdownVsOracle/byName["chip_app_input"].GeoMeanSlowdownVsOracle)
	fmt.Printf("oracle headroom over baseline:         %.2fx\n",
		byName["oracle"].GeoMeanVsBaseline)
}
